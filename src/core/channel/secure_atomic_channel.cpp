#include "core/channel/secure_atomic_channel.hpp"

#include "obs/trace.hpp"

namespace sintra::core {

namespace {
constexpr std::uint8_t kShareTag = 1;
}  // namespace

SecureAtomicChannel::SecureAtomicChannel(Environment& env,
                                         Dispatcher& dispatcher,
                                         const std::string& pid,
                                         AtomicChannel::Config config)
    : Protocol(env, dispatcher, pid) {
  atomic_ =
      std::make_unique<AtomicChannel>(env, dispatcher, pid + ".ac", config);
  atomic_->set_deliver_callback([this](const Bytes& ct, PartyId) {
    on_ciphertext_delivered(ct);
  });
  auto& reg = obs::registry();
  const obs::Labels labels =
      obs::party_layer_labels(env.self(), obs::layer_of(pid));
  m_deliveries_ = &reg.counter("channel.deliveries", labels);
  m_decrypt_shares_ = &reg.counter("channel.decrypt_shares", labels);
  m_invalid_ciphertexts_ = &reg.counter("channel.invalid_ciphertexts", labels);
  m_decrypt_wait_ms_ = &reg.histogram("channel.decrypt_wait_ms", labels);
  activate();
}

SecureAtomicChannel::~SecureAtomicChannel() = default;

Bytes SecureAtomicChannel::encrypt(const crypto::Tdh2Public& channel_key,
                                   const std::string& pid, BytesView payload,
                                   Rng& rng) {
  return channel_key.encrypt(payload, to_bytes(pid), rng);
}

void SecureAtomicChannel::send(BytesView payload) {
  const Bytes ct = encrypt(env_.keys().cipher->pub(), pid(), payload,
                           env_.rng());
  atomic_->send(ct);
}

void SecureAtomicChannel::send_ciphertext(BytesView ciphertext) {
  atomic_->send(ciphertext);
}

std::optional<Bytes> SecureAtomicChannel::receive() {
  if (inbox_.empty()) return std::nullopt;
  Bytes out = std::move(inbox_.front());
  inbox_.pop_front();
  return out;
}

std::optional<Bytes> SecureAtomicChannel::receive_ciphertext() {
  if (ciphertext_cursor_ >= ciphertexts_.size()) return std::nullopt;
  return ciphertexts_[ciphertext_cursor_++];
}

void SecureAtomicChannel::on_ciphertext_delivered(const Bytes& ciphertext) {
  const std::size_t index = slots_.size();
  Slot slot;
  slot.ciphertext = ciphertext;
  slot.delivered_ms = env_.now_ms();
  slots_.push_back(std::move(slot));
  ciphertexts_.push_back(ciphertext);

  // The label binds a ciphertext to its channel: one produced for another
  // channel (a cross-context replay) is skipped exactly like an invalid
  // one — uniformly at every honest party, since the label is plaintext.
  const auto label = crypto::tdh2_ciphertext_label(ciphertext);
  if (!label.has_value() || *label != to_bytes(pid())) {
    m_invalid_ciphertexts_->inc();
    slots_[index].invalid = true;
    flush_ready();
    return;
  }

  // Release our decryption share (an extra round of interaction, §2.6).
  auto share = env_.keys().cipher->decrypt_share(ciphertext);
  if (!share.has_value()) {
    // Invalid ciphertext (a Byzantine sender bypassed encrypt()): the
    // validity check fails identically at every honest party, so all skip
    // this position — order stays consistent.
    m_invalid_ciphertexts_->inc();
    slots_[index].invalid = true;
    flush_ready();
    return;
  }
  // Optimistic decryption: the slot's collector accumulates shares
  // unverified; at k it hands them to combine_checked (possibly on the
  // crypto pool), which validates only the one combined result unless a
  // Byzantine share forces the per-share fallback.
  std::shared_ptr<crypto::Tdh2Party> cipher = env_.keys().cipher;
  slots_[index].shares = std::make_unique<ShareCollector<Bytes>>(
      env_.crypto_pool(), cipher->k(),
      [cipher, ct = ciphertext, pool = &env_.crypto_pool()](
          const ShareCollector<Bytes>::Shares& shares) {
        // The pool pointer lets a Byzantine-triggered fallback verify the
        // k chosen shares in parallel (run_parallel is safe to call from
        // the pool worker this closure runs on).
        return cipher->combine_checked(ct, shares, pool);
      },
      [this, index](Bytes plaintext) {
        Slot& slot = slots_[index];
        if (slot.invalid || slot.plaintext.has_value()) return;
        slot.plaintext = std::move(plaintext);
        flush_ready();
      });

  Writer w;
  w.u8(kShareTag);
  w.u64(index);
  w.bytes(*share);
  send_all(w.data());

  // Shares that raced ahead of our atomic delivery.
  auto early = early_shares_.find(index);
  if (early != early_shares_.end()) {
    auto pending = std::move(early->second);
    early_shares_.erase(early);
    for (auto& [from, s] : pending) process_share(from, index, s);
  }
}

void SecureAtomicChannel::on_message(PartyId from, BytesView payload) {
  try {
    Reader r(payload);
    if (r.u8() != kShareTag) return;
    const std::size_t index = static_cast<std::size_t>(r.u64());
    const Bytes share = r.bytes();
    r.expect_end();
    // Bound buffered early shares: a Byzantine peer may send shares for
    // arbitrary future indices.
    if (index > slots_.size() + 10000) return;
    if (index >= slots_.size()) {
      early_shares_[index].emplace(from, share);
      return;
    }
    process_share(from, index, share);
  } catch (const SerdeError&) {
    // drop
  }
}

void SecureAtomicChannel::process_share(PartyId from, std::size_t index,
                                        const Bytes& share) {
  Slot& slot = slots_[index];
  if (slot.invalid || slot.plaintext.has_value() || !slot.shares) return;
  // Counts shares *collected*, not verified — under the optimistic path
  // individual shares are only examined when a combine fails.
  if (slot.shares->add(from, share)) m_decrypt_shares_->inc();
}

void SecureAtomicChannel::flush_ready() {
  while (next_delivery_ < slots_.size()) {
    Slot& slot = slots_[next_delivery_];
    if (slot.invalid) {
      ++next_delivery_;
      continue;
    }
    if (!slot.plaintext.has_value()) break;
    m_deliveries_->inc();
    m_decrypt_wait_ms_->observe(env_.now_ms() - slot.delivered_ms);
    obs::emit(obs::EventType::kDeliver, env_.now_ms(), -1, env_.self(), pid(),
              slot.plaintext->size());
    deliveries_.push_back(Delivery{*slot.plaintext, env_.now_ms()});
    if (delivery_log_limit_ != 0 &&
        deliveries_.size() >= 2 * delivery_log_limit_) {
      deliveries_.erase(deliveries_.begin(),
                        deliveries_.end() -
                            static_cast<std::ptrdiff_t>(delivery_log_limit_));
    }
    inbox_.push_back(*slot.plaintext);
    if (deliver_cb_) deliver_cb_(inbox_.back());
    ++next_delivery_;
  }
}

void SecureAtomicChannel::abort() {
  atomic_->abort();
  Protocol::abort();
}

}  // namespace sintra::core
