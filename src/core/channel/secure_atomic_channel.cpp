#include "core/channel/secure_atomic_channel.hpp"

namespace sintra::core {

namespace {
constexpr std::uint8_t kShareTag = 1;
}  // namespace

SecureAtomicChannel::SecureAtomicChannel(Environment& env,
                                         Dispatcher& dispatcher,
                                         const std::string& pid,
                                         AtomicChannel::Config config)
    : Protocol(env, dispatcher, pid) {
  atomic_ =
      std::make_unique<AtomicChannel>(env, dispatcher, pid + ".ac", config);
  atomic_->set_deliver_callback([this](const Bytes& ct, PartyId) {
    on_ciphertext_delivered(ct);
  });
  activate();
}

SecureAtomicChannel::~SecureAtomicChannel() = default;

Bytes SecureAtomicChannel::encrypt(const crypto::Tdh2Public& channel_key,
                                   const std::string& pid, BytesView payload,
                                   Rng& rng) {
  return channel_key.encrypt(payload, to_bytes(pid), rng);
}

void SecureAtomicChannel::send(BytesView payload) {
  const Bytes ct = encrypt(env_.keys().cipher->pub(), pid(), payload,
                           env_.rng());
  atomic_->send(ct);
}

void SecureAtomicChannel::send_ciphertext(BytesView ciphertext) {
  atomic_->send(ciphertext);
}

std::optional<Bytes> SecureAtomicChannel::receive() {
  if (inbox_.empty()) return std::nullopt;
  Bytes out = std::move(inbox_.front());
  inbox_.pop_front();
  return out;
}

std::optional<Bytes> SecureAtomicChannel::receive_ciphertext() {
  if (ciphertext_cursor_ >= ciphertexts_.size()) return std::nullopt;
  return ciphertexts_[ciphertext_cursor_++];
}

void SecureAtomicChannel::on_ciphertext_delivered(const Bytes& ciphertext) {
  const std::size_t index = slots_.size();
  Slot slot;
  slot.ciphertext = ciphertext;
  slots_.push_back(std::move(slot));
  ciphertexts_.push_back(ciphertext);

  // The label binds a ciphertext to its channel: one produced for another
  // channel (a cross-context replay) is skipped exactly like an invalid
  // one — uniformly at every honest party, since the label is plaintext.
  const auto label = crypto::tdh2_ciphertext_label(ciphertext);
  if (!label.has_value() || *label != to_bytes(pid())) {
    slots_[index].invalid = true;
    flush_ready();
    return;
  }

  // Release our decryption share (an extra round of interaction, §2.6).
  auto share = env_.keys().cipher->decrypt_share(ciphertext);
  if (!share.has_value()) {
    // Invalid ciphertext (a Byzantine sender bypassed encrypt()): the
    // validity check fails identically at every honest party, so all skip
    // this position — order stays consistent.
    slots_[index].invalid = true;
    flush_ready();
    return;
  }
  Writer w;
  w.u8(kShareTag);
  w.u64(index);
  w.bytes(*share);
  send_all(w.data());

  // Shares that raced ahead of our atomic delivery.
  auto early = early_shares_.find(index);
  if (early != early_shares_.end()) {
    auto pending = std::move(early->second);
    early_shares_.erase(early);
    for (auto& [from, s] : pending) process_share(from, index, s);
  }
}

void SecureAtomicChannel::on_message(PartyId from, BytesView payload) {
  try {
    Reader r(payload);
    if (r.u8() != kShareTag) return;
    const std::size_t index = static_cast<std::size_t>(r.u64());
    const Bytes share = r.bytes();
    r.expect_end();
    // Bound buffered early shares: a Byzantine peer may send shares for
    // arbitrary future indices.
    if (index > slots_.size() + 10000) return;
    if (index >= slots_.size()) {
      early_shares_[index].emplace(from, share);
      return;
    }
    process_share(from, index, share);
  } catch (const SerdeError&) {
    // drop
  }
}

void SecureAtomicChannel::process_share(PartyId from, std::size_t index,
                                        const Bytes& share) {
  Slot& slot = slots_[index];
  if (slot.invalid || slot.plaintext.has_value()) return;
  if (slot.shares.contains(from)) return;
  if (!env_.keys().cipher->verify_share(slot.ciphertext, from, share)) return;
  slot.shares.emplace(from, share);
  try_decrypt(index);
}

void SecureAtomicChannel::try_decrypt(std::size_t index) {
  Slot& slot = slots_[index];
  const int k = env_.keys().cipher->k();
  if (static_cast<int>(slot.shares.size()) < k) return;
  std::vector<std::pair<int, Bytes>> shares(slot.shares.begin(),
                                            slot.shares.end());
  slot.plaintext = env_.keys().cipher->combine(slot.ciphertext, shares);
  flush_ready();
}

void SecureAtomicChannel::flush_ready() {
  while (next_delivery_ < slots_.size()) {
    Slot& slot = slots_[next_delivery_];
    if (slot.invalid) {
      ++next_delivery_;
      continue;
    }
    if (!slot.plaintext.has_value()) break;
    deliveries_.push_back(Delivery{*slot.plaintext, env_.now_ms()});
    inbox_.push_back(*slot.plaintext);
    if (deliver_cb_) deliver_cb_(inbox_.back());
    ++next_delivery_;
  }
}

void SecureAtomicChannel::abort() {
  atomic_->abort();
  Protocol::abort();
}

}  // namespace sintra::core
