#include "core/channel/atomic_channel.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace sintra::core {

namespace {
constexpr std::uint8_t kSignedTag = 1;
// Payload marker bytes (first byte of every queued payload).
constexpr std::uint8_t kData = 0;
constexpr std::uint8_t kCloseRequest = 1;
}  // namespace

AtomicChannel::AtomicChannel(Environment& env, Dispatcher& dispatcher,
                             const std::string& pid, Config config)
    : Protocol(env, dispatcher, pid), config_(config) {
  if (config_.batch_size < 0 || config_.batch_size > env.n())
    throw std::invalid_argument("AtomicChannel: bad batch size");
  if (config_.max_batch_count > 1 << 20)
    throw std::invalid_argument("AtomicChannel: bad max batch count");
  if (config_.pipeline_depth > 1 << 20)
    throw std::invalid_argument("AtomicChannel: bad pipeline depth");
  auto& reg = obs::registry();
  const obs::Labels labels =
      obs::party_layer_labels(env.self(), obs::layer_of(pid));
  m_rounds_ = &reg.counter("channel.rounds", labels);
  m_deliveries_ = &reg.counter("channel.deliveries", labels);
  m_parked_ = &reg.counter("channel.parked_batches", labels);
  m_rounds_in_flight_ = &reg.gauge("channel.rounds_in_flight", labels);
  m_round_ms_ = &reg.histogram("channel.round_ms", labels);
  m_batch_entries_ = &reg.histogram("channel.batch_entries", labels);
  m_batch_size_ = &reg.histogram("channel.batch_size", labels);
  m_mvba_iterations_ = &reg.histogram("channel.mvba_iterations", labels);
  activate();
}

AtomicChannel::~AtomicChannel() = default;

int AtomicChannel::batch_size() const {
  return config_.batch_size > 0 ? config_.batch_size : env_.t() + 1;
}

int AtomicChannel::max_bundle_entries() const {
  return std::max(1, config_.max_batch_count);
}

int AtomicChannel::depth() const {
  return std::max(1, config_.pipeline_depth);
}

Bytes AtomicChannel::sign_statement(
    int round, const std::vector<Entry>& entries) const {
  Writer w;
  w.str("ac-sign");
  w.str(pid());
  w.u32(static_cast<std::uint32_t>(round));
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    w.u32(static_cast<std::uint32_t>(e.origin));
    w.u64(e.seq);
    w.bytes(e.payload);
  }
  return std::move(w).take();
}

std::string AtomicChannel::mvba_pid(int round) const {
  return pid() + ".r" + std::to_string(round);
}

void AtomicChannel::write_bundle(Writer& w, const SignedBundle& b) {
  w.u32(static_cast<std::uint32_t>(b.signer));
  w.u32(static_cast<std::uint32_t>(b.entries.size()));
  for (const Entry& e : b.entries) {
    w.u32(static_cast<std::uint32_t>(e.origin));
    w.u64(e.seq);
    w.bytes(e.payload);
  }
  w.bytes(b.sig);
}

AtomicChannel::SignedBundle AtomicChannel::read_bundle(Reader& r) {
  SignedBundle b;
  b.signer = static_cast<PartyId>(r.u32());
  const std::uint32_t count = r.u32();
  if (count > (1u << 20)) throw SerdeError("bundle too large");
  b.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry e;
    e.origin = static_cast<PartyId>(r.u32());
    e.seq = r.u64();
    e.payload = r.bytes();
    b.entries.push_back(std::move(e));
  }
  b.sig = r.bytes();
  return b;
}

void AtomicChannel::send(BytesView payload) {
  if (closed_) throw std::logic_error("AtomicChannel::send: channel closed");
  enqueue_marker(kData, payload);
}

void AtomicChannel::close() {
  if (closed_) return;
  enqueue_marker(kCloseRequest, {});
}

void AtomicChannel::enqueue_marker(std::uint8_t marker, BytesView payload) {
  Writer w;
  w.u8(marker);
  w.raw(payload);
  own_queue_.emplace_back(own_seq_++, std::move(w).take());
  maybe_start_rounds();
}

std::optional<Bytes> AtomicChannel::receive() {
  if (inbox_.empty()) return std::nullopt;
  Bytes out = std::move(inbox_.front());
  inbox_.pop_front();
  return out;
}

bool AtomicChannel::have_signable_work() const {
  for (const auto& [seq, payload] : own_queue_) {
    if (!inflight_keys_.contains({env_.self(), seq})) return true;
  }
  for (const auto& [key, payload] : foreign_pool_) {
    if (!inflight_keys_.contains(key)) return true;
  }
  return false;
}

void AtomicChannel::maybe_start_rounds() {
  // Watermark window: open rounds strictly in order while fewer than
  // `depth()` rounds separate the start cursor from the delivery cursor
  // and there is something to sign (or another party already opened the
  // round, in which case we must participate for its MVBA to gather a
  // quorum of proposals).
  while (!closed_ && next_start_round_ < next_deliver_round_ + depth()) {
    const int r = next_start_round_;
    const auto it = signed_.find(r);
    const bool externally_started = it != signed_.end() && !it->second.empty();
    if (!externally_started && !have_signable_work()) break;
    start_round(r);
  }
}

void AtomicChannel::start_round(int round) {
  RoundState& rs = rounds_[round];
  rs.start_ms = env_.now_ms();
  obs::emit(obs::EventType::kRoundStart, rs.start_ms, env_.self(), -1, pid(),
            0, round);
  ArrayValidator validator = [this, round](BytesView batch) {
    return batch_valid(round, batch);
  };
  rs.mvba = std::make_unique<ArrayAgreement>(
      env_, dispatcher_, mvba_pid(round), std::move(validator), config_.order);
  rs.mvba->set_decide_callback([this, round](const Bytes& batch) {
    on_batch_decided(round, batch);
  });
  next_start_round_ = round + 1;
  m_rounds_in_flight_->set(static_cast<double>(rounds_.size()));

  // Sign our own queued payloads (greedy drain), or adopt pending foreign
  // payloads; with neither, stay unsigned until another party's bundle
  // arrives and maybe_adopt_and_propose adopts it.
  std::vector<Entry> bundle = collect_bundle();
  if (!bundle.empty()) sign_and_broadcast(round, std::move(bundle));
  maybe_adopt_and_propose(round);
}

std::vector<AtomicChannel::Entry> AtomicChannel::collect_bundle() const {
  // Greedy drain of own_queue_, skipping keys already signed into an open
  // round; the count/byte caps bound one bundle (a bundle always carries
  // at least one payload, so an oversized single payload still ships).
  std::vector<Entry> out;
  std::size_t bytes = 0;
  for (const auto& [seq, payload] : own_queue_) {
    if (static_cast<int>(out.size()) >= max_bundle_entries()) break;
    if (!out.empty() && config_.max_batch_bytes != 0 &&
        bytes + payload.size() > config_.max_batch_bytes) {
      break;
    }
    if (inflight_keys_.contains({env_.self(), seq})) continue;
    out.push_back(Entry{env_.self(), seq, payload});
    bytes += payload.size();
  }
  if (!out.empty()) return out;
  for (const auto& [key, payload] : foreign_pool_) {
    if (static_cast<int>(out.size()) >= max_bundle_entries()) break;
    if (!out.empty() && config_.max_batch_bytes != 0 &&
        bytes + payload.size() > config_.max_batch_bytes) {
      break;
    }
    if (inflight_keys_.contains(key)) continue;
    out.push_back(Entry{key.first, key.second, payload});
    bytes += payload.size();
  }
  return out;
}

void AtomicChannel::sign_and_broadcast(int round, std::vector<Entry> entries) {
  RoundState& rs = rounds_.at(round);
  rs.signed_bundle = true;
  for (const Entry& e : entries) {
    const MessageKey key{e.origin, e.seq};
    if (inflight_keys_.insert(key).second) rs.own_keys.push_back(key);
  }
  m_batch_size_->observe(static_cast<double>(entries.size()));
  SignedBundle b;
  b.signer = env_.self();
  b.sig = env_.keys().sign(sign_statement(round, entries));
  b.entries = std::move(entries);
  Writer w;
  w.u8(kSignedTag);
  w.u32(static_cast<std::uint32_t>(round));
  write_bundle(w, b);
  send_all(w.data());
}

void AtomicChannel::on_message(PartyId from, BytesView payload) {
  try {
    Reader r(payload);
    if (r.u8() != kSignedTag) return;
    handle_signed(from, r);
  } catch (const SerdeError&) {
    // drop
  }
}

bool AtomicChannel::bundle_shape_valid(const SignedBundle& b) const {
  if (b.signer < 0 || b.signer >= env_.n()) return false;
  if (b.entries.empty()) return false;
  if (static_cast<int>(b.entries.size()) > max_bundle_entries()) return false;
  std::set<MessageKey> keys;
  for (const Entry& e : b.entries) {
    if (e.origin < 0 || e.origin >= env_.n()) return false;
    if (e.payload.empty()) return false;  // marker byte is mandatory
    // A Byzantine proposer stuffing the same (origin, seq) twice into one
    // bundle is rejected outright.
    if (!keys.insert({e.origin, e.seq}).second) return false;
  }
  return true;
}

bool AtomicChannel::bundle_valid(int round, const SignedBundle& b,
                                 bool check_delivered) const {
  if (!bundle_shape_valid(b)) return false;
  if (check_delivered) {
    for (const Entry& e : b.entries) {
      if (delivered_keys_.contains({e.origin, e.seq})) return false;
    }
  }
  return env_.keys().verify_party_sig(b.signer,
                                      sign_statement(round, b.entries), b.sig);
}

void AtomicChannel::handle_signed(PartyId from, Reader& rd) {
  const int round = static_cast<int>(rd.u32());
  SignedBundle b = read_bundle(rd);
  rd.expect_end();
  if (closed_) return;
  if (b.signer != from) return;  // a signer relays only its own signature
  if (round < next_deliver_round_ || round > next_deliver_round_ + 10000)
    return;
  auto& per_round = signed_[round];
  if (per_round.contains(b.signer)) return;
  if (!bundle_valid(round, b, /*check_delivered=*/false)) return;
  for (const Entry& e : b.entries) {
    const MessageKey key{e.origin, e.seq};
    if (!delivered_keys_.contains(key)) {
      foreign_pool_.try_emplace(key, e.payload);
    }
  }
  per_round.emplace(b.signer, std::move(b));
  maybe_start_rounds();  // a signed bundle can wake an idle channel
  maybe_adopt_and_propose(round);
}

void AtomicChannel::maybe_adopt_and_propose(int round) {
  if (closed_) return;
  auto rit = rounds_.find(round);
  if (rit == rounds_.end()) return;
  RoundState& rs = rit->second;
  if (rs.decided) return;
  auto& per_round = signed_[round];

  if (!rs.signed_bundle && !per_round.empty()) {
    // Adopt messages first signed by another party (paper §2.5).  Prefer
    // fresh local work that may have arrived since the round opened, then
    // the first signer's undelivered entries, then — to keep the round
    // signable at all — its bundle as-is.
    std::vector<Entry> adopt = collect_bundle();
    if (adopt.empty()) {
      const SignedBundle& other = per_round.begin()->second;
      for (const Entry& e : other.entries) {
        const MessageKey key{e.origin, e.seq};
        if (delivered_keys_.contains(key)) continue;
        if (inflight_keys_.contains(key)) continue;
        adopt.push_back(e);
      }
      if (adopt.empty()) {
        for (const Entry& e : other.entries) {
          if (delivered_keys_.contains({e.origin, e.seq})) continue;
          adopt.push_back(e);
        }
      }
      if (adopt.empty()) adopt = other.entries;
    }
    sign_and_broadcast(round, std::move(adopt));
  }
  if (rs.proposed || !rs.signed_bundle) return;

  // Only bundles our own validator accepts may enter a proposal
  // (ArrayAgreement::propose rejects externally-invalid values).
  std::vector<const SignedBundle*> eligible;
  for (const auto& [signer, bundle] : per_round) {
    if (bundle_valid(round, bundle, strict_validity())) {
      eligible.push_back(&bundle);
    }
  }
  if (static_cast<int>(eligible.size()) < batch_size()) return;

  // Build a batch of batch_size() bundles from distinct signers,
  // preferring bundles that contribute new payload keys so full batches
  // deliver more.
  std::vector<const SignedBundle*> picked;
  std::set<MessageKey> keys;
  for (const SignedBundle* b : eligible) {
    if (static_cast<int>(picked.size()) == batch_size()) break;
    bool fresh = false;
    for (const Entry& e : b->entries) {
      if (!keys.contains({e.origin, e.seq})) {
        fresh = true;
        break;
      }
    }
    if (!fresh) continue;
    for (const Entry& e : b->entries) keys.insert({e.origin, e.seq});
    picked.push_back(b);
  }
  if (static_cast<int>(picked.size()) < batch_size()) {
    // Not enough distinct messages yet.  Wait for more signers before
    // padding the batch with duplicates — with concurrent senders this is
    // what fills rounds with distinct messages (the paper's batch-of-two
    // deliveries, Fig. 4); with a single sender the n-t quorum arrives
    // with only one message in flight and the batch legitimately repeats
    // it ("one multi-valued agreement for every delivered message", §4.2).
    if (static_cast<int>(per_round.size()) < env_.n() - env_.t()) return;
    for (const SignedBundle* b : eligible) {
      if (static_cast<int>(picked.size()) == batch_size()) break;
      if (std::find(picked.begin(), picked.end(), b) == picked.end()) {
        picked.push_back(b);
      }
    }
  }
  if (static_cast<int>(picked.size()) < batch_size()) return;

  Writer w;
  w.u32(static_cast<std::uint32_t>(picked.size()));
  for (const SignedBundle* b : picked) write_bundle(w, *b);
  rs.proposed = true;
  rs.mvba->propose(w.data());
}

bool AtomicChannel::batch_valid(int round, BytesView batch) const {
  try {
    Reader r(batch);
    const std::uint32_t count = r.u32();
    if (count != static_cast<std::uint32_t>(batch_size())) return false;
    std::set<PartyId> signers;
    for (std::uint32_t i = 0; i < count; ++i) {
      SignedBundle b = read_bundle(r);
      if (!signers.insert(b.signer).second) return false;
      // With serial rounds (depth 1) the validator also rejects
      // already-delivered entries, exactly like the seed; with a deeper
      // pipeline the validator must be a pure function of the batch bytes
      // (delivered_keys_ advances concurrently at different parties), so
      // the at-most-once guarantee moves to the delivery-time skip.
      if (!bundle_valid(round, b, strict_validity())) return false;
    }
    r.expect_end();
    return true;
  } catch (const SerdeError&) {
    return false;
  }
}

void AtomicChannel::on_batch_decided(int round, const Bytes& batch) {
  if (closed_) return;
  auto it = rounds_.find(round);
  if (it == rounds_.end() || it->second.decided) return;
  RoundState& rs = it->second;
  rs.decided = batch;
  rs.iterations = rs.mvba->iterations_used();
  if (round != next_deliver_round_) {
    // Decided ahead of the watermark: park until predecessors deliver.
    m_parked_->inc();
    obs::emit(obs::EventType::kPark, env_.now_ms(), env_.self(), -1, pid(),
              batch.size(), round);
    return;
  }
  flush_decided();
}

void AtomicChannel::flush_decided() {
  while (!closed_) {
    auto it = rounds_.find(next_deliver_round_);
    if (it == rounds_.end() || !it->second.decided) break;
    deliver_round(next_deliver_round_);
  }
  if (!closed_) maybe_start_rounds();
}

void AtomicChannel::deliver_round(int round) {
  auto it = rounds_.find(round);
  const Bytes batch = std::move(*it->second.decided);
  const int iterations = it->second.iterations;
  const double start_ms = it->second.start_ms;
  // The MVBA may still be executing (this is called from its decide
  // callback) and stragglers may still feed it messages; keep it alive.
  finished_mvbas_.push_back(std::move(it->second.mvba));
  for (const MessageKey& key : it->second.own_keys) {
    inflight_keys_.erase(key);
  }
  rounds_.erase(it);
  signed_.erase(round);
  m_rounds_in_flight_->set(static_cast<double>(rounds_.size()));

  // Deliver the batch in the fixed order (origin index, then sequence).
  std::vector<Entry> entries;
  try {
    Reader r(batch);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      SignedBundle b = read_bundle(r);
      for (Entry& e : b.entries) entries.push_back(std::move(e));
    }
  } catch (const SerdeError&) {
    return;  // cannot happen: the batch passed external validity
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return std::tie(a.origin, a.seq) < std::tie(b.origin, b.seq);
            });

  round_ = round;
  next_deliver_round_ = round + 1;

  m_rounds_->inc();
  m_round_ms_->observe(env_.now_ms() - start_ms);
  m_batch_entries_->observe(static_cast<double>(entries.size()));
  m_mvba_iterations_->observe(static_cast<double>(iterations));

  for (Entry& e : entries) {
    const MessageKey key{e.origin, e.seq};
    if (!delivered_keys_.insert(key).second) continue;  // duplicate in batch
    if (e.origin == env_.self()) {
      own_queue_.erase(
          std::remove_if(own_queue_.begin(), own_queue_.end(),
                         [&](const auto& item) { return item.first == e.seq; }),
          own_queue_.end());
    }
    foreign_pool_.erase(key);
    inflight_keys_.erase(key);
    deliver(std::move(e), round, iterations);
    if (closed_) return;  // the close quorum was reached mid-batch
  }
}

void AtomicChannel::deliver(Entry entry, int round, int iterations) {
  Reader r(entry.payload);
  const std::uint8_t marker = r.u8();
  Bytes user = r.raw(r.remaining());

  if (marker == kCloseRequest) {
    close_origins_.insert(entry.origin);
    if (static_cast<int>(close_origins_.size()) >= env_.t() + 1) {
      closed_ = true;
      deactivate();
      if (closed_cb_) closed_cb_();
    }
    return;
  }
  if (marker != kData) return;  // unknown marker from a Byzantine origin

  m_deliveries_->inc();
  obs::emit(obs::EventType::kDeliver, env_.now_ms(), entry.origin,
            env_.self(), pid(), user.size(), round);
  deliveries_.push_back(Delivery{user, entry.origin, entry.seq, round,
                                 env_.now_ms(), iterations});
  if (delivery_log_limit_ != 0 &&
      deliveries_.size() >= 2 * delivery_log_limit_) {
    deliveries_.erase(deliveries_.begin(),
                      deliveries_.end() -
                          static_cast<std::ptrdiff_t>(delivery_log_limit_));
  }
  inbox_.push_back(std::move(user));
  if (deliver_cb_) deliver_cb_(inbox_.back(), entry.origin);
}

void AtomicChannel::abort() {
  for (auto& [round, rs] : rounds_) {
    if (rs.mvba) rs.mvba->abort();
  }
  closed_ = true;
  Protocol::abort();
}

}  // namespace sintra::core
