#include "core/channel/atomic_channel.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace sintra::core {

namespace {
constexpr std::uint8_t kSignedTag = 1;
// Payload marker bytes (first byte of every queued payload).
constexpr std::uint8_t kData = 0;
constexpr std::uint8_t kCloseRequest = 1;
}  // namespace

AtomicChannel::AtomicChannel(Environment& env, Dispatcher& dispatcher,
                             const std::string& pid, Config config)
    : Protocol(env, dispatcher, pid), config_(config) {
  if (config_.batch_size < 0 || config_.batch_size > env.n())
    throw std::invalid_argument("AtomicChannel: bad batch size");
  auto& reg = obs::registry();
  const obs::Labels labels =
      obs::party_layer_labels(env.self(), obs::layer_of(pid));
  m_rounds_ = &reg.counter("channel.rounds", labels);
  m_deliveries_ = &reg.counter("channel.deliveries", labels);
  m_round_ms_ = &reg.histogram("channel.round_ms", labels);
  m_batch_entries_ = &reg.histogram("channel.batch_entries", labels);
  m_mvba_iterations_ = &reg.histogram("channel.mvba_iterations", labels);
  activate();
}

AtomicChannel::~AtomicChannel() = default;

int AtomicChannel::batch_size() const {
  return config_.batch_size > 0 ? config_.batch_size : env_.t() + 1;
}

Bytes AtomicChannel::sign_statement(int round, PartyId origin,
                                    std::uint64_t seq,
                                    BytesView payload) const {
  Writer w;
  w.str("ac-sign");
  w.str(pid());
  w.u32(static_cast<std::uint32_t>(round));
  w.u32(static_cast<std::uint32_t>(origin));
  w.u64(seq);
  w.bytes(payload);
  return std::move(w).take();
}

std::string AtomicChannel::mvba_pid(int round) const {
  return pid() + ".r" + std::to_string(round);
}

void AtomicChannel::write_entry(Writer& w, const SignedEntry& e) {
  w.u32(static_cast<std::uint32_t>(e.signer));
  w.u32(static_cast<std::uint32_t>(e.origin));
  w.u64(e.seq);
  w.bytes(e.payload);
  w.bytes(e.sig);
}

AtomicChannel::SignedEntry AtomicChannel::read_entry(Reader& r) {
  SignedEntry e;
  e.signer = static_cast<PartyId>(r.u32());
  e.origin = static_cast<PartyId>(r.u32());
  e.seq = r.u64();
  e.payload = r.bytes();
  e.sig = r.bytes();
  return e;
}

void AtomicChannel::send(BytesView payload) {
  if (closed_) throw std::logic_error("AtomicChannel::send: channel closed");
  enqueue_marker(kData, payload);
}

void AtomicChannel::close() {
  if (closed_) return;
  enqueue_marker(kCloseRequest, {});
}

void AtomicChannel::enqueue_marker(std::uint8_t marker, BytesView payload) {
  Writer w;
  w.u8(marker);
  w.raw(payload);
  own_queue_.emplace_back(own_seq_++, std::move(w).take());
  maybe_start_round();
}

std::optional<Bytes> AtomicChannel::receive() {
  if (inbox_.empty()) return std::nullopt;
  Bytes out = std::move(inbox_.front());
  inbox_.pop_front();
  return out;
}

void AtomicChannel::maybe_start_round() {
  if (closed_ || round_active_) return;
  if (own_queue_.empty() && foreign_pool_.empty()) return;
  round_active_ = true;
  signed_this_round_ = false;
  proposed_this_round_ = false;

  const int r = current_round_;
  round_start_ms_ = env_.now_ms();
  obs::emit(obs::EventType::kRoundStart, round_start_ms_, env_.self(), -1,
            pid(), 0, r);
  ArrayValidator validator = [this, r](BytesView batch) {
    return batch_valid(r, batch);
  };
  mvba_ = std::make_unique<ArrayAgreement>(env_, dispatcher_, mvba_pid(r),
                                           std::move(validator),
                                           config_.order);
  mvba_->set_decide_callback([this, r](const Bytes& batch) {
    on_batch_decided(r, batch);
  });

  // Sign our own head, or adopt a pending foreign payload.
  if (!own_queue_.empty()) {
    const auto& [seq, payload] = own_queue_.front();
    sign_and_broadcast(r, env_.self(), seq, payload);
  } else {
    const auto& [key, payload] = *foreign_pool_.begin();
    sign_and_broadcast(r, key.first, key.second, payload);
  }
  maybe_adopt_and_propose();
}

void AtomicChannel::sign_and_broadcast(int round, PartyId origin,
                                       std::uint64_t seq,
                                       const Bytes& payload) {
  signed_this_round_ = true;
  SignedEntry e;
  e.signer = env_.self();
  e.origin = origin;
  e.seq = seq;
  e.payload = payload;
  e.sig = env_.keys().sign(sign_statement(round, origin, seq, payload));
  Writer w;
  w.u8(kSignedTag);
  w.u32(static_cast<std::uint32_t>(round));
  write_entry(w, e);
  send_all(w.data());
}

void AtomicChannel::on_message(PartyId from, BytesView payload) {
  try {
    Reader r(payload);
    if (r.u8() != kSignedTag) return;
    handle_signed(from, r);
  } catch (const SerdeError&) {
    // drop
  }
}

void AtomicChannel::handle_signed(PartyId from, Reader& rd) {
  const int round = static_cast<int>(rd.u32());
  SignedEntry e = read_entry(rd);
  rd.expect_end();
  if (closed_) return;
  if (e.signer != from) return;  // a signer relays only its own signature
  if (round < current_round_ || round > current_round_ + 10000) return;
  if (e.origin < 0 || e.origin >= env_.n()) return;
  if (e.payload.empty()) return;  // marker byte is mandatory
  auto& per_round = signed_[round];
  if (per_round.contains(e.signer)) return;
  if (!env_.keys().verify_party_sig(
          e.signer, sign_statement(round, e.origin, e.seq, e.payload),
          e.sig)) {
    return;
  }
  const MessageKey key{e.origin, e.seq};
  if (!delivered_keys_.contains(key)) {
    foreign_pool_.try_emplace(key, e.payload);
  }
  per_round.emplace(e.signer, std::move(e));
  maybe_start_round();  // a signed message can wake an idle channel
  maybe_adopt_and_propose();
}

void AtomicChannel::maybe_adopt_and_propose() {
  if (!round_active_ || closed_) return;
  const int r = current_round_;
  auto& per_round = signed_[r];

  if (!signed_this_round_ && !per_round.empty()) {
    // Adopt a message first signed by another party (paper §2.5).
    const SignedEntry& other = per_round.begin()->second;
    sign_and_broadcast(r, other.origin, other.seq, other.payload);
  }
  if (proposed_this_round_ || !signed_this_round_) return;
  if (static_cast<int>(per_round.size()) < batch_size()) return;

  // Build a batch of batch_size() entries from distinct signers,
  // preferring distinct payload keys so full batches deliver more.
  std::vector<const SignedEntry*> picked;
  std::set<MessageKey> keys;
  for (const auto& [signer, entry] : per_round) {
    if (static_cast<int>(picked.size()) == batch_size()) break;
    if (keys.insert({entry.origin, entry.seq}).second) picked.push_back(&entry);
  }
  if (static_cast<int>(picked.size()) < batch_size()) {
    // Not enough distinct messages yet.  Wait for more signers before
    // padding the batch with duplicates — with concurrent senders this is
    // what fills rounds with distinct messages (the paper's batch-of-two
    // deliveries, Fig. 4); with a single sender the n-t quorum arrives
    // with only one message in flight and the batch legitimately repeats
    // it ("one multi-valued agreement for every delivered message", §4.2).
    if (static_cast<int>(per_round.size()) < env_.n() - env_.t()) return;
    for (const auto& [signer, entry] : per_round) {
      if (static_cast<int>(picked.size()) == batch_size()) break;
      if (std::find(picked.begin(), picked.end(), &entry) == picked.end()) {
        picked.push_back(&entry);
      }
    }
  }
  if (static_cast<int>(picked.size()) < batch_size()) return;

  Writer w;
  w.u32(static_cast<std::uint32_t>(picked.size()));
  for (const SignedEntry* e : picked) write_entry(w, *e);
  proposed_this_round_ = true;
  mvba_->propose(w.data());
}

bool AtomicChannel::batch_valid(int round, BytesView batch) const {
  try {
    Reader r(batch);
    const std::uint32_t count = r.u32();
    if (count != static_cast<std::uint32_t>(batch_size())) return false;
    std::set<PartyId> signers;
    for (std::uint32_t i = 0; i < count; ++i) {
      SignedEntry e = read_entry(r);
      if (e.signer < 0 || e.signer >= env_.n()) return false;
      if (e.origin < 0 || e.origin >= env_.n()) return false;
      if (!signers.insert(e.signer).second) return false;
      if (e.payload.empty()) return false;
      if (delivered_keys_.contains({e.origin, e.seq})) return false;
      if (!env_.keys().verify_party_sig(
              e.signer, sign_statement(round, e.origin, e.seq, e.payload),
              e.sig)) {
        return false;
      }
    }
    r.expect_end();
    return true;
  } catch (const SerdeError&) {
    return false;
  }
}

void AtomicChannel::on_batch_decided(int round, const Bytes& batch) {
  if (round != current_round_ || !round_active_) return;

  // Deliver the batch in the fixed order (origin index, then sequence).
  std::vector<SignedEntry> entries;
  try {
    Reader r(batch);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) entries.push_back(read_entry(r));
  } catch (const SerdeError&) {
    return;  // cannot happen: the batch passed external validity
  }
  std::sort(entries.begin(), entries.end(),
            [](const SignedEntry& a, const SignedEntry& b) {
              return std::tie(a.origin, a.seq) < std::tie(b.origin, b.seq);
            });
  const int iterations = mvba_->iterations_used();
  finished_mvbas_.push_back(std::move(mvba_));

  round_ = round;
  round_active_ = false;
  current_round_ = round + 1;
  signed_.erase(round);

  m_rounds_->inc();
  m_round_ms_->observe(env_.now_ms() - round_start_ms_);
  m_batch_entries_->observe(static_cast<double>(entries.size()));
  m_mvba_iterations_->observe(static_cast<double>(iterations));

  for (SignedEntry& e : entries) {
    const MessageKey key{e.origin, e.seq};
    if (!delivered_keys_.insert(key).second) continue;  // duplicate in batch
    own_queue_.erase(
        std::remove_if(own_queue_.begin(), own_queue_.end(),
                       [&](const auto& item) {
                         return e.origin == env_.self() &&
                                item.first == e.seq;
                       }),
        own_queue_.end());
    foreign_pool_.erase(key);
    deliver(std::move(e), round, iterations);
    if (closed_) return;  // the close quorum was reached mid-batch
  }
  maybe_start_round();
}

void AtomicChannel::deliver(SignedEntry entry, int round, int iterations) {
  Reader r(entry.payload);
  const std::uint8_t marker = r.u8();
  Bytes user = r.raw(r.remaining());

  if (marker == kCloseRequest) {
    close_origins_.insert(entry.origin);
    if (static_cast<int>(close_origins_.size()) >= env_.t() + 1) {
      closed_ = true;
      deactivate();
      if (closed_cb_) closed_cb_();
    }
    return;
  }
  if (marker != kData) return;  // unknown marker from a Byzantine origin

  m_deliveries_->inc();
  obs::emit(obs::EventType::kDeliver, env_.now_ms(), entry.origin,
            env_.self(), pid(), user.size(), round);
  deliveries_.push_back(Delivery{user, entry.origin, entry.seq, round,
                                 env_.now_ms(), iterations});
  inbox_.push_back(user);
  if (deliver_cb_) deliver_cb_(inbox_.back(), entry.origin);
}

void AtomicChannel::abort() {
  if (mvba_) mvba_->abort();
  closed_ = true;
  Protocol::abort();
}

}  // namespace sintra::core
