// Atomic broadcast channel (paper §2.5).
//
// Continuous totally-ordered broadcast in the style of Chandra–Toueg,
// with multi-valued Byzantine agreement replacing consensus: the parties
// proceed in global rounds and agree on a *batch* of signed messages per
// round.
//
// Round R at party Pi:
//   1. Pi signs its next queued payload together with R and broadcasts it;
//      with no local payload, Pi *adopts* a payload first signed by
//      another party and signs that (the fairness mechanism);
//   2. after collecting batch-size properly-signed round-R messages from
//      distinct signers, Pi proposes the batch to the round's multi-valued
//      agreement; the external-validity predicate checks the signatures,
//      signer distinctness, the round number, and that no entry was
//      already delivered;
//   3. the agreed batch's messages are delivered in a fixed order (by the
//      originating sender's index, then sequence number), skipping
//      duplicates.
//
// Payload identity is (origin, per-origin sequence number) — the paper's
// §2.5 integrity relaxation: a bit string is delivered at most once per
// honest send, not at most once globally.
//
// The batch size is n − f + 1 for configurable fairness parameter f,
// t+1 ≤ f ≤ n−t (experiments: batch = t + 1, i.e. f = n − t).
//
// Termination: close() enqueues a termination-request marker as a regular
// payload; the channel closes at the end of the round in which markers
// from t+1 distinct origins have been delivered — so it terminates when
// all honest parties together close it, and stays open unless at least
// one honest party closes it.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "core/agreement/array_agreement.hpp"
#include "core/channel/channel_base.hpp"
#include "obs/metrics.hpp"

namespace sintra::core {

class AtomicChannel : public Protocol, public ChannelBase {
 public:
  struct Config {
    /// Batch size; 0 means the experiments' default t + 1.
    int batch_size = 0;
    ArrayAgreement::CandidateOrder order =
        ArrayAgreement::CandidateOrder::kRandomLocal;
  };

  /// One delivered payload, with instrumentation for the benchmarks.
  struct Delivery {
    Bytes payload;
    PartyId origin;
    std::uint64_t seq;
    int round;
    double time_ms;
    int mvba_iterations;  // >1 = the extra-binary-agreement band of Fig. 5
  };

  AtomicChannel(Environment& env, Dispatcher& dispatcher,
                const std::string& pid, Config config);
  AtomicChannel(Environment& env, Dispatcher& dispatcher,
                const std::string& pid)
      : AtomicChannel(env, dispatcher, pid, Config{}) {}
  ~AtomicChannel() override;

  /// Queues a payload for totally-ordered delivery.  Throws
  /// std::logic_error once the channel is closed.
  void send(BytesView payload);
  [[nodiscard]] bool can_send() const { return !closed_; }

  /// Pops the next delivered payload (nullopt if none pending).
  std::optional<Bytes> receive();
  [[nodiscard]] bool can_receive() const { return !inbox_.empty(); }

  /// Requests channel termination (see the close protocol above).
  void close();
  [[nodiscard]] bool is_closed() const { return closed_; }

  /// Full delivery log (benchmarks read timing and origins from here).
  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }
  [[nodiscard]] int rounds_completed() const { return round_; }

  void set_deliver_callback(
      std::function<void(const Bytes&, PartyId origin)> cb) {
    deliver_cb_ = std::move(cb);
  }
  void set_closed_callback(std::function<void()> cb) {
    closed_cb_ = std::move(cb);
  }

  void abort() override;

  // --- ChannelBase (the paper's Figure 2 Channel interface) ---
  void send_payload(BytesView payload) override { send(payload); }
  std::optional<Bytes> receive_payload() override { return receive(); }
  [[nodiscard]] bool can_send_payload() const override { return can_send(); }
  [[nodiscard]] bool can_receive_payload() const override {
    return can_receive();
  }
  void close_channel() override { close(); }
  [[nodiscard]] bool channel_closed() const override { return is_closed(); }

 protected:
  void on_message(PartyId from, BytesView payload) override;

 private:
  /// A round-R signed message: (origin, seq, payload) signed by `signer`.
  struct SignedEntry {
    PartyId signer = -1;
    PartyId origin = -1;
    std::uint64_t seq = 0;
    Bytes payload;  // marker byte + user bytes
    Bytes sig;
  };

  using MessageKey = std::pair<PartyId, std::uint64_t>;  // (origin, seq)

  [[nodiscard]] Bytes sign_statement(int round, PartyId origin,
                                     std::uint64_t seq,
                                     BytesView payload) const;
  [[nodiscard]] std::string mvba_pid(int round) const;
  [[nodiscard]] int batch_size() const;

  static void write_entry(Writer& w, const SignedEntry& e);
  static SignedEntry read_entry(Reader& r);

  void enqueue_marker(std::uint8_t marker, BytesView payload);
  void maybe_start_round();
  void sign_and_broadcast(int round, PartyId origin, std::uint64_t seq,
                          const Bytes& payload);
  void handle_signed(PartyId from, Reader& r);
  void maybe_adopt_and_propose();
  [[nodiscard]] bool batch_valid(int round, BytesView batch) const;
  void on_batch_decided(int round, const Bytes& batch);
  void deliver(SignedEntry entry, int round, int iterations);

  Config config_;
  bool closed_ = false;

  int round_ = 0;           // rounds completed
  bool round_active_ = false;
  int current_round_ = 1;   // the round in progress (or next to start)
  bool signed_this_round_ = false;
  bool proposed_this_round_ = false;

  std::uint64_t own_seq_ = 0;
  std::deque<std::pair<std::uint64_t, Bytes>> own_queue_;  // (seq, payload)
  std::map<MessageKey, Bytes> foreign_pool_;  // undelivered adopted payloads
  std::set<MessageKey> delivered_keys_;
  std::set<PartyId> close_origins_;

  // Verified round-R signed messages, one per signer.
  std::map<int, std::map<PartyId, SignedEntry>> signed_;

  std::unique_ptr<ArrayAgreement> mvba_;
  std::vector<std::unique_ptr<ArrayAgreement>> finished_mvbas_;

  std::deque<Bytes> inbox_;
  std::vector<Delivery> deliveries_;
  std::function<void(const Bytes&, PartyId)> deliver_cb_;
  std::function<void()> closed_cb_;

  // Instrumentation handles (obs/metrics.hpp); measurement only.
  double round_start_ms_ = 0.0;
  obs::Counter* m_rounds_ = nullptr;
  obs::Counter* m_deliveries_ = nullptr;
  obs::Histogram* m_round_ms_ = nullptr;
  obs::Histogram* m_batch_entries_ = nullptr;
  obs::Histogram* m_mvba_iterations_ = nullptr;
};

}  // namespace sintra::core
