// Atomic broadcast channel (paper §2.5), throughput-oriented.
//
// Continuous totally-ordered broadcast in the style of Chandra–Toueg,
// with multi-valued Byzantine agreement replacing consensus: the parties
// proceed in global rounds and agree on a *batch* of signed messages per
// round.
//
// Round R at party Pi:
//   1. Pi signs a *bundle* of queued payloads together with R and
//      broadcasts it (greedy drain of the local queue, capped by
//      max_batch_count / max_batch_bytes); with no local payload, Pi
//      *adopts* the payloads first signed by another party and signs
//      those (the fairness mechanism);
//   2. after collecting batch-size properly-signed round-R bundles from
//      distinct signers, Pi proposes the batch to the round's
//      multi-valued agreement; the external-validity predicate checks
//      the signatures, signer distinctness, the round number, and
//      per-bundle (origin, seq) distinctness;
//   3. the agreed batch's messages are delivered in a fixed order (by the
//      originating sender's index, then sequence number), skipping
//      duplicates.
//
// Payload identity is (origin, per-origin sequence number) — the paper's
// §2.5 integrity relaxation: a bit string is delivered at most once per
// honest send, not at most once globally.
//
// The batch size counts *bundles* (one per signer) and is n − f + 1 for
// configurable fairness parameter f, t+1 ≤ f ≤ n−t (experiments:
// batch = t + 1, i.e. f = n − t).  With max_batch_count = 1 a bundle is
// exactly the seed's single signed payload.
//
// Pipelining: up to pipeline_depth rounds run concurrently (a watermark
// window over a per-round state map).  Decided batches are delivered
// strictly in round order; a batch whose round is ahead of the delivery
// watermark is parked until its predecessors deliver.  With
// pipeline_depth = 1 the validator additionally rejects already-delivered
// entries (the seed's behavior); with a deeper window that check moves to
// delivery time, where the duplicate skip is a deterministic function of
// the common delivered prefix — see DESIGN.md §11 for the ordering
// argument.
//
// Termination: close() enqueues a termination-request marker as a regular
// payload; the channel closes at the end of the round in which markers
// from t+1 distinct origins have been delivered — so it terminates when
// all honest parties together close it, and stays open unless at least
// one honest party closes it.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "core/agreement/array_agreement.hpp"
#include "core/channel/channel_base.hpp"
#include "obs/metrics.hpp"

namespace sintra::core {

class AtomicChannel : public Protocol, public ChannelBase {
 public:
  struct Config {
    /// Batch size in bundles (distinct signers); 0 means the experiments'
    /// default t + 1.
    int batch_size = 0;
    ArrayAgreement::CandidateOrder order =
        ArrayAgreement::CandidateOrder::kRandomLocal;
    /// Maximum payloads per signed bundle (proposer batching).  1
    /// reproduces the seed's one-payload-per-signature behavior.
    int max_batch_count = 1;
    /// Soft cap on the summed payload bytes of a bundle; a bundle always
    /// carries at least one payload.  0 means no byte cap.
    std::size_t max_batch_bytes = 64 * 1024;
    /// Number of rounds allowed in flight concurrently.  1 reproduces the
    /// seed's strictly-serial rounds.
    int pipeline_depth = 1;
  };

  /// One delivered payload, with instrumentation for the benchmarks.
  struct Delivery {
    Bytes payload;
    PartyId origin;
    std::uint64_t seq;
    int round;
    double time_ms;
    int mvba_iterations;  // >1 = the extra-binary-agreement band of Fig. 5
  };

  AtomicChannel(Environment& env, Dispatcher& dispatcher,
                const std::string& pid, Config config);
  AtomicChannel(Environment& env, Dispatcher& dispatcher,
                const std::string& pid)
      : AtomicChannel(env, dispatcher, pid, Config{}) {}
  ~AtomicChannel() override;

  /// Queues a payload for totally-ordered delivery.  Throws
  /// std::logic_error once the channel is closed.
  void send(BytesView payload);
  [[nodiscard]] bool can_send() const { return !closed_; }

  /// Pops the next delivered payload (nullopt if none pending).
  std::optional<Bytes> receive();
  [[nodiscard]] bool can_receive() const { return !inbox_.empty(); }

  /// Requests channel termination (see the close protocol above).
  void close();
  [[nodiscard]] bool is_closed() const { return closed_; }

  /// Full delivery log (benchmarks read timing and origins from here).
  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }
  [[nodiscard]] int rounds_completed() const { return round_; }

  /// Caps the in-memory delivery log at roughly `limit` entries (the
  /// oldest half is dropped once 2×limit accumulate, so trimming is
  /// amortized O(1)).  0 = unlimited retention (the default; benchmarks
  /// rely on the full log).  Long-running processes should set a cap.
  void set_delivery_log_limit(std::size_t limit) {
    delivery_log_limit_ = limit;
  }

  void set_deliver_callback(
      std::function<void(const Bytes&, PartyId origin)> cb) {
    deliver_cb_ = std::move(cb);
  }
  void set_closed_callback(std::function<void()> cb) {
    closed_cb_ = std::move(cb);
  }

  void abort() override;

  // --- ChannelBase (the paper's Figure 2 Channel interface) ---
  void send_payload(BytesView payload) override { send(payload); }
  std::optional<Bytes> receive_payload() override { return receive(); }
  [[nodiscard]] bool can_send_payload() const override { return can_send(); }
  [[nodiscard]] bool can_receive_payload() const override {
    return can_receive();
  }
  void close_channel() override { close(); }
  [[nodiscard]] bool channel_closed() const override { return is_closed(); }

 protected:
  void on_message(PartyId from, BytesView payload) override;

 private:
  /// One queued payload inside a bundle.
  struct Entry {
    PartyId origin = -1;
    std::uint64_t seq = 0;
    Bytes payload;  // marker byte + user bytes
  };

  /// A round-R signed message: a vector of entries signed by `signer`.
  struct SignedBundle {
    PartyId signer = -1;
    std::vector<Entry> entries;
    Bytes sig;
  };

  using MessageKey = std::pair<PartyId, std::uint64_t>;  // (origin, seq)

  /// Per-round protocol state (the pipeline window's unit).
  struct RoundState {
    std::unique_ptr<ArrayAgreement> mvba;
    bool signed_bundle = false;
    bool proposed = false;
    double start_ms = 0.0;
    std::vector<MessageKey> own_keys;  // keys this party signed into R
    std::optional<Bytes> decided;      // parked until predecessors deliver
    int iterations = 0;
  };

  [[nodiscard]] Bytes sign_statement(int round,
                                     const std::vector<Entry>& entries) const;
  [[nodiscard]] std::string mvba_pid(int round) const;
  [[nodiscard]] int batch_size() const;
  [[nodiscard]] int max_bundle_entries() const;
  [[nodiscard]] int depth() const;
  /// Seed-mode (serial rounds) validators may consult delivered_keys_;
  /// pipelined validators must stay a pure function of the batch bytes.
  [[nodiscard]] bool strict_validity() const { return depth() <= 1; }

  static void write_bundle(Writer& w, const SignedBundle& b);
  static SignedBundle read_bundle(Reader& r);

  void enqueue_marker(std::uint8_t marker, BytesView payload);
  void maybe_start_rounds();
  void start_round(int round);
  [[nodiscard]] bool have_signable_work() const;
  [[nodiscard]] std::vector<Entry> collect_bundle() const;
  void sign_and_broadcast(int round, std::vector<Entry> entries);
  void handle_signed(PartyId from, Reader& r);
  void maybe_adopt_and_propose(int round);
  [[nodiscard]] bool bundle_shape_valid(const SignedBundle& b) const;
  [[nodiscard]] bool bundle_valid(int round, const SignedBundle& b,
                                  bool check_delivered) const;
  [[nodiscard]] bool batch_valid(int round, BytesView batch) const;
  void on_batch_decided(int round, const Bytes& batch);
  void flush_decided();
  void deliver_round(int round);
  void deliver(Entry entry, int round, int iterations);

  Config config_;
  bool closed_ = false;

  int round_ = 0;              // rounds completed (last delivered round)
  int next_deliver_round_ = 1; // delivery watermark
  int next_start_round_ = 1;   // next round the window may open

  std::uint64_t own_seq_ = 0;
  std::deque<std::pair<std::uint64_t, Bytes>> own_queue_;  // (seq, payload)
  std::map<MessageKey, Bytes> foreign_pool_;  // undelivered adopted payloads
  std::set<MessageKey> delivered_keys_;
  std::set<MessageKey> inflight_keys_;  // keys we signed into open rounds
  std::set<PartyId> close_origins_;

  // Verified round-R signed bundles, one per signer.
  std::map<int, std::map<PartyId, SignedBundle>> signed_;

  std::map<int, RoundState> rounds_;  // the pipeline window
  std::vector<std::unique_ptr<ArrayAgreement>> finished_mvbas_;

  std::deque<Bytes> inbox_;
  std::vector<Delivery> deliveries_;
  std::size_t delivery_log_limit_ = 0;  // 0 = unlimited
  std::function<void(const Bytes&, PartyId)> deliver_cb_;
  std::function<void()> closed_cb_;

  // Instrumentation handles (obs/metrics.hpp); measurement only.
  obs::Counter* m_rounds_ = nullptr;
  obs::Counter* m_deliveries_ = nullptr;
  obs::Counter* m_parked_ = nullptr;
  obs::Gauge* m_rounds_in_flight_ = nullptr;
  obs::Histogram* m_round_ms_ = nullptr;
  obs::Histogram* m_batch_entries_ = nullptr;
  obs::Histogram* m_batch_size_ = nullptr;
  obs::Histogram* m_mvba_iterations_ = nullptr;
};

}  // namespace sintra::core
