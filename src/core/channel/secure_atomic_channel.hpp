// Secure causal atomic broadcast channel (paper §2.6, §3.4).
//
// Wraps an atomic channel with the TDH2 threshold cryptosystem: payloads
// are encrypted under the channel's global public key before being
// atomically broadcast, so their content stays hidden until their position
// in the delivery sequence is fixed — which is exactly what preserves
// causal order against a Byzantine adversary (Reiter–Birman).  Once the
// atomic channel delivers a ciphertext, every party releases a decryption
// share; k = t+1 verified shares recover the cleartext, which is delivered
// in ciphertext order.
//
// Non-members can submit messages: encrypt() needs only the public key;
// the resulting ciphertext is handed to group members who call
// send_ciphertext() without ever seeing the cleartext (paper §3.4).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "core/channel/atomic_channel.hpp"
#include "core/share_collector.hpp"

namespace sintra::core {

class SecureAtomicChannel : public Protocol, public ChannelBase {
 public:
  SecureAtomicChannel(Environment& env, Dispatcher& dispatcher,
                      const std::string& pid, AtomicChannel::Config config);
  SecureAtomicChannel(Environment& env, Dispatcher& dispatcher,
                      const std::string& pid)
      : SecureAtomicChannel(env, dispatcher, pid, AtomicChannel::Config{}) {}
  ~SecureAtomicChannel() override;

  /// Encrypts for this channel; callable by anyone with the public key.
  static Bytes encrypt(const crypto::Tdh2Public& channel_key,
                       const std::string& pid, BytesView payload, Rng& rng);

  /// Encrypts `payload` under the group key and sends it (member-side
  /// convenience for the common case).
  void send(BytesView payload);

  /// Relays an externally produced ciphertext (paper §3.4).
  void send_ciphertext(BytesView ciphertext);

  [[nodiscard]] bool can_send() const { return atomic_->can_send(); }

  /// Next decrypted payload, in ciphertext order.
  std::optional<Bytes> receive();
  [[nodiscard]] bool can_receive() const { return !inbox_.empty(); }

  /// The next *ciphertext* whose position is already fixed but whose
  /// cleartext has not been consumed via receive() yet (paper §3.4's
  /// receiveCiphertext); nullopt if none.
  std::optional<Bytes> receive_ciphertext();
  [[nodiscard]] bool can_receive_ciphertext() const {
    return ciphertext_cursor_ < ciphertexts_.size();
  }

  void close() { atomic_->close(); }
  [[nodiscard]] bool is_closed() const { return atomic_->is_closed(); }

  /// Timing log for the benchmarks (delivery time of the *cleartext*).
  struct Delivery {
    Bytes payload;
    double time_ms;
  };
  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }

  /// Caps the in-memory delivery logs (this channel's and the wrapped
  /// atomic channel's); 0 = unlimited (the default).
  void set_delivery_log_limit(std::size_t limit) {
    delivery_log_limit_ = limit;
    atomic_->set_delivery_log_limit(limit);
  }

  void set_deliver_callback(std::function<void(const Bytes&)> cb) {
    deliver_cb_ = std::move(cb);
  }
  /// Fires when the underlying atomic channel terminates.
  void set_closed_callback(std::function<void()> cb) {
    atomic_->set_closed_callback(std::move(cb));
  }

  void abort() override;

  // --- ChannelBase (the paper's Figure 2 Channel interface) ---
  void send_payload(BytesView payload) override { send(payload); }
  std::optional<Bytes> receive_payload() override { return receive(); }
  [[nodiscard]] bool can_send_payload() const override { return can_send(); }
  [[nodiscard]] bool can_receive_payload() const override {
    return can_receive();
  }
  void close_channel() override { close(); }
  [[nodiscard]] bool channel_closed() const override { return is_closed(); }

 protected:
  void on_message(PartyId from, BytesView payload) override;

 private:
  void on_ciphertext_delivered(const Bytes& ciphertext);
  void process_share(PartyId from, std::size_t index, const Bytes& share);
  void flush_ready();

  std::unique_ptr<AtomicChannel> atomic_;

  struct Slot {
    Bytes ciphertext;
    bool invalid = false;  // failed TDH2 validity: skipped uniformly
    /// Collects decryption shares unverified; k of them trigger an
    /// optimistic combine_checked (crypto/tdh2.hpp) on the crypto pool.
    std::unique_ptr<ShareCollector<Bytes>> shares;
    std::optional<Bytes> plaintext;
    double delivered_ms = 0.0;  // when the ciphertext's position was fixed
  };
  std::vector<Slot> slots_;
  std::size_t next_delivery_ = 0;     // next slot to release in order
  std::size_t ciphertext_cursor_ = 0; // receive_ciphertext position
  std::vector<Bytes> ciphertexts_;
  // Shares that arrived before their ciphertext's slot existed.
  std::map<std::size_t, std::map<PartyId, Bytes>> early_shares_;

  std::deque<Bytes> inbox_;
  std::vector<Delivery> deliveries_;
  std::size_t delivery_log_limit_ = 0;  // 0 = unlimited
  std::function<void(const Bytes&)> deliver_cb_;

  // Instrumentation handles (obs/metrics.hpp); measurement only.
  obs::Counter* m_deliveries_ = nullptr;
  obs::Counter* m_decrypt_shares_ = nullptr;
  obs::Counter* m_invalid_ciphertexts_ = nullptr;
  obs::Histogram* m_decrypt_wait_ms_ = nullptr;
};

}  // namespace sintra::core
