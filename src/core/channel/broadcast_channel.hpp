// Aggregated broadcast channels (paper §2.7): reliable channel and
// consistent channel.
//
// Virtual protocols — they exchange no messages of their own.  A channel
// runs n broadcast instances in parallel, one per party; a terminated
// instance for sender j is replaced by a fresh one with j's sequence
// number incremented.  send() is handled by the caller's current
// instance; delivered payloads from any instance are multiplexed onto the
// channel.  A reliable channel guarantees agreement but no ordering; a
// consistent channel guarantees only consistency per (sender, seq).
//
// Termination: close() sends a termination-request marker as the caller's
// last message; a party that has received such markers from t+1 distinct
// senders aborts the still-active broadcasts and terminates.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "core/broadcast/consistent_broadcast.hpp"
#include "core/broadcast/reliable_broadcast.hpp"
#include "core/channel/channel_base.hpp"
#include "core/env.hpp"

namespace sintra::core {

/// B is ReliableBroadcast or ConsistentBroadcast (same construction and
/// delivery API).
template <typename B>
class BroadcastChannel : public ChannelBase {
 public:
  /// One multiplexed delivery: which party sent it and its per-sender
  /// sequence number.
  struct Delivery {
    Bytes payload;
    PartyId sender;
    std::uint64_t seq;
    double time_ms;
  };

  BroadcastChannel(Environment& env, Dispatcher& dispatcher, std::string pid)
      : env_(env), dispatcher_(dispatcher), pid_(std::move(pid)) {
    instances_.resize(static_cast<std::size_t>(env.n()));
    seqs_.assign(static_cast<std::size_t>(env.n()), 0);
    for (PartyId j = 0; j < env.n(); ++j) open_instance(j);
  }

  /// Queues a payload on this party's current broadcast instance.
  void send(BytesView payload) {
    if (closed_) throw std::logic_error("BroadcastChannel::send: closed");
    Writer w;
    w.u8(0);  // data marker
    w.raw(payload);
    outgoing_.push_back(std::move(w).take());
    pump_send();
  }

  [[nodiscard]] bool can_send() const { return !closed_; }

  std::optional<Bytes> receive() {
    if (inbox_.empty()) return std::nullopt;
    Bytes out = std::move(inbox_.front());
    inbox_.pop_front();
    return out;
  }
  [[nodiscard]] bool can_receive() const { return !inbox_.empty(); }

  /// Sends the termination request as this party's last channel message.
  void close() {
    if (closed_ || close_sent_) return;
    close_sent_ = true;
    Writer w;
    w.u8(1);  // close marker
    outgoing_.push_back(std::move(w).take());
    pump_send();
  }

  [[nodiscard]] bool is_closed() const { return closed_; }

  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }

  void set_deliver_callback(std::function<void(const Bytes&, PartyId)> cb) {
    deliver_cb_ = std::move(cb);
  }
  void set_closed_callback(std::function<void()> cb) {
    closed_cb_ = std::move(cb);
  }

  // --- ChannelBase (the paper's Figure 2 Channel interface) ---
  void send_payload(BytesView payload) override { send(payload); }
  std::optional<Bytes> receive_payload() override { return receive(); }
  [[nodiscard]] bool can_send_payload() const override { return can_send(); }
  [[nodiscard]] bool can_receive_payload() const override {
    return can_receive();
  }
  void close_channel() override { close(); }
  [[nodiscard]] bool channel_closed() const override { return is_closed(); }

 private:
  [[nodiscard]] std::string instance_basepid(PartyId j) const {
    return pid_ + ".q" + std::to_string(seqs_[static_cast<std::size_t>(j)]);
  }

  void open_instance(PartyId j) {
    auto inst = std::make_unique<B>(env_, dispatcher_, instance_basepid(j), j);
    inst->set_deliver_callback([this, j](const Bytes& payload) {
      on_instance_delivered(j, payload);
    });
    instances_[static_cast<std::size_t>(j)] = std::move(inst);
    if (j == env_.self()) {
      own_instance_busy_ = false;
      pump_send();
    }
  }

  void pump_send() {
    if (own_instance_busy_ || outgoing_.empty() || closed_) return;
    own_instance_busy_ = true;
    Bytes payload = std::move(outgoing_.front());
    outgoing_.pop_front();
    instances_[static_cast<std::size_t>(env_.self())]->send(payload);
  }

  void on_instance_delivered(PartyId j, const Bytes& raw) {
    if (closed_) return;
    // Replace the finished instance (deferred destruction: the old object
    // is on the call stack right now).
    retired_.push_back(std::move(instances_[static_cast<std::size_t>(j)]));
    ++seqs_[static_cast<std::size_t>(j)];
    const std::uint64_t seq = seqs_[static_cast<std::size_t>(j)] - 1;
    open_instance(j);

    try {
      Reader r(raw);
      const std::uint8_t marker = r.u8();
      Bytes payload = r.raw(r.remaining());
      if (marker == 1) {
        close_senders_.insert(j);
        if (static_cast<int>(close_senders_.size()) >= env_.t() + 1) {
          do_close();
        }
        return;
      }
      if (marker != 0) return;
      deliveries_.push_back(Delivery{payload, j, seq, env_.now_ms()});
      inbox_.push_back(payload);
      if (deliver_cb_) deliver_cb_(inbox_.back(), j);
    } catch (const SerdeError&) {
      // A Byzantine sender broadcast an unparsable channel frame: ignore.
    }
  }

  void do_close() {
    closed_ = true;
    for (auto& inst : instances_) {
      if (inst) inst->abort();
    }
    if (closed_cb_) closed_cb_();
  }

  Environment& env_;
  Dispatcher& dispatcher_;
  std::string pid_;

  std::vector<std::unique_ptr<B>> instances_;
  std::vector<std::unique_ptr<B>> retired_;
  std::vector<std::uint64_t> seqs_;
  std::deque<Bytes> outgoing_;
  bool own_instance_busy_ = false;
  bool close_sent_ = false;
  bool closed_ = false;
  std::set<PartyId> close_senders_;

  std::deque<Bytes> inbox_;
  std::vector<Delivery> deliveries_;
  std::function<void(const Bytes&, PartyId)> deliver_cb_;
  std::function<void()> closed_cb_;
};

/// The paper's ReliableChannel: agreement per message, no ordering.
using ReliableChannel = BroadcastChannel<ReliableBroadcast>;

/// The paper's ConsistentChannel: consistency only.
using ConsistentChannel = BroadcastChannel<ConsistentBroadcast>;

}  // namespace sintra::core
