#include "core/dispatcher.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/trace.hpp"

namespace sintra::core {

void Dispatcher::register_pid(const std::string& pid, Handler handler) {
  if (handlers_.contains(pid))
    throw std::logic_error("Dispatcher: pid already registered: " + pid);
  retired_.erase(pid);
  auto [it, inserted] = handlers_.emplace(pid, std::move(handler));
  (void)inserted;
  // Replay buffered early messages.
  auto buf = buffers_.find(pid);
  if (buf != buffers_.end()) {
    auto pending = std::move(buf->second);
    buffered_total_ -= pending.size();
    buffers_.erase(buf);
    for (auto& [from, payload] : pending) {
      // The handler may unregister mid-replay (e.g. a one-shot protocol
      // that terminates); stop replaying then.  Invoke through a copy so
      // self-unregistration cannot destroy the function mid-call.
      auto h = handlers_.find(pid);
      if (h == handlers_.end()) break;
      Handler current = h->second;
      current(from, payload);
    }
  }
}

void Dispatcher::unregister_pid(const std::string& pid) {
  handlers_.erase(pid);
  retired_[pid] = true;
}

void Dispatcher::attach_obs(int party, std::function<double()> now_fn) {
  obs_party_ = party;
  obs_now_ = std::move(now_fn);
  auto& reg = obs::registry();
  obs_malformed_ =
      &reg.counter("dispatcher.malformed", obs::party_labels(party));
  obs_early_ =
      &reg.counter("dispatcher.early_buffered", obs::party_labels(party));
  obs_bytes_moved_ =
      &reg.counter("dispatcher.bytes_moved", obs::party_labels(party));
  obs_attached_ = true;
}

Dispatcher::LayerMetrics& Dispatcher::layer_metrics(const std::string& layer) {
  auto it = layer_metrics_.find(layer);
  if (it != layer_metrics_.end()) return it->second;
  auto& reg = obs::registry();
  LayerMetrics m;
  const obs::Labels labels = obs::party_layer_labels(obs_party_, layer);
  m.messages = &reg.counter("dispatcher.messages", labels);
  m.bytes = &reg.counter("dispatcher.bytes", labels);
  m.handle_ms = &reg.histogram("dispatcher.handle_ms", labels);
  return layer_metrics_.emplace(layer, m).first->second;
}

void Dispatcher::on_message(PartyId from, BytesView wire) {
  // The payload stays a view into `wire` on the routed fast path; only
  // early-buffered messages are materialized into owned bytes.
  WireMessageView msg;
  try {
    msg = parse_frame_view(wire);
  } catch (const SerdeError&) {
    if (obs_attached_) obs_malformed_->inc();
    return;  // malformed frame from a Byzantine sender: drop
  }
  auto h = handlers_.find(msg.pid);
  LayerMetrics* m = nullptr;
  if (obs_attached_) {
    // The layer label derives from the (attacker-controlled) pid, so
    // per-layer registry entries are created only for pids with a
    // registered handler; everything else — early-buffered, retired or
    // junk pids — shares the one fixed "unrouted" layer.  Otherwise a
    // Byzantine peer could grow the registry without bound by flooding
    // distinct non-numeric pids, defeating the kMaxBuffered guard.
    static const std::string kUnrouted = "unrouted";
    m = &layer_metrics(h != handlers_.end() ? obs::layer_of(msg.pid)
                                            : kUnrouted);
    m->messages->inc();
    m->bytes->inc(wire.size());
    obs::emit(obs::EventType::kRecv, obs_now_(), from, obs_party_, msg.pid,
              wire.size());
  }
  if (h != handlers_.end()) {
    // Copy: the handler may unregister itself (protocol termination)
    // while running, which would otherwise destroy it mid-call.
    Handler handler = h->second;
    if (obs_attached_) obs_bytes_moved_->inc(msg.payload.size());
    if (m != nullptr) {
      // Real CPU time, not environment time: the simulator's virtual
      // clock is frozen inside a handler, and the actual crypto cost is
      // exactly what the paper's §4.2 attribution wants.
      const auto t0 = std::chrono::steady_clock::now();
      handler(from, msg.payload);
      m->handle_ms->observe(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count());
    } else {
      handler(from, msg.payload);
    }
    return;
  }
  if (retired_.contains(msg.pid)) return;  // finished protocol: drop
  if (buffered_total_ >= kMaxBuffered) return;  // flooding guard
  if (obs_attached_) obs_early_->inc();
  buffers_[msg.pid].emplace_back(from,
                                 Bytes(msg.payload.begin(), msg.payload.end()));
  ++buffered_total_;
}

}  // namespace sintra::core
