#include "core/dispatcher.hpp"

#include <stdexcept>

namespace sintra::core {

void Dispatcher::register_pid(const std::string& pid, Handler handler) {
  if (handlers_.contains(pid))
    throw std::logic_error("Dispatcher: pid already registered: " + pid);
  retired_.erase(pid);
  auto [it, inserted] = handlers_.emplace(pid, std::move(handler));
  (void)inserted;
  // Replay buffered early messages.
  auto buf = buffers_.find(pid);
  if (buf != buffers_.end()) {
    auto pending = std::move(buf->second);
    buffered_total_ -= pending.size();
    buffers_.erase(buf);
    for (auto& [from, payload] : pending) {
      // The handler may unregister mid-replay (e.g. a one-shot protocol
      // that terminates); stop replaying then.  Invoke through a copy so
      // self-unregistration cannot destroy the function mid-call.
      auto h = handlers_.find(pid);
      if (h == handlers_.end()) break;
      Handler current = h->second;
      current(from, payload);
    }
  }
}

void Dispatcher::unregister_pid(const std::string& pid) {
  handlers_.erase(pid);
  retired_[pid] = true;
}

void Dispatcher::on_message(PartyId from, BytesView wire) {
  WireMessage msg;
  try {
    msg = parse_frame(wire);
  } catch (const SerdeError&) {
    return;  // malformed frame from a Byzantine sender: drop
  }
  auto h = handlers_.find(msg.pid);
  if (h != handlers_.end()) {
    // Copy: the handler may unregister itself (protocol termination)
    // while running, which would otherwise destroy it mid-call.
    Handler handler = h->second;
    handler(from, msg.payload);
    return;
  }
  if (retired_.contains(msg.pid)) return;  // finished protocol: drop
  if (buffered_total_ >= kMaxBuffered) return;  // flooding guard
  buffers_[msg.pid].emplace_back(from, std::move(msg.payload));
  ++buffered_total_;
}

}  // namespace sintra::core
