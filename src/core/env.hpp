// The execution environment a SINTRA party runs in.
//
// Protocol code is written against this interface only; the discrete-event
// simulator (sim/) and the threaded in-process transport (facade/) both
// implement it.  The model matches the paper's: reliable authenticated
// asynchronous point-to-point links, no common clock, no timing
// assumptions anywhere in protocol logic (now_ms exists for measurement
// only and must never influence control flow).
#pragma once

#include "crypto/dealer.hpp"
#include "crypto/work_pool.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace sintra::core {

using PartyId = int;

class Environment {
 public:
  virtual ~Environment() = default;

  [[nodiscard]] virtual PartyId self() const = 0;
  [[nodiscard]] virtual int n() const = 0;
  [[nodiscard]] virtual int t() const = 0;

  /// Asynchronously sends framed bytes to one party.  Reliable and
  /// authenticated; delivery order per link is FIFO; delay is unbounded.
  virtual void send(PartyId to, Bytes wire) = 0;

  /// Sends to every party including self (self-delivery goes through the
  /// same asynchronous path — no reentrancy).
  virtual void send_all(Bytes wire) = 0;

  /// Virtual (simulator) or wall-clock (facade) time, for measurement only.
  [[nodiscard]] virtual double now_ms() const = 0;

  /// Per-party deterministic randomness.
  [[nodiscard]] virtual Rng& rng() = 0;

  /// This party's key material from the trusted dealer.
  [[nodiscard]] virtual const crypto::PartyKeys& keys() const = 0;

  /// The worker pool protocols offload combine/verify work to (see
  /// crypto/work_pool.hpp).  The default is a process-wide *inline* pool:
  /// submit() runs the work synchronously on the calling thread, which
  /// keeps the simulator single-threaded and its virtual-time traces
  /// deterministic.  NetEnvironment overrides this with a real pool when
  /// configured with crypto_threads > 0.
  [[nodiscard]] virtual crypto::WorkPool& crypto_pool() {
    static crypto::WorkPool inline_pool{0};
    return inline_pool;
  }
};

}  // namespace sintra::core
