// Routes incoming wire messages to protocol instances by protocol id.
//
// Asynchrony means messages for a protocol instance can arrive before the
// local party has created that instance (e.g. a fast peer's round-r+1
// votes while we are still in round r).  Such early messages are buffered
// per pid and replayed when the instance registers.  A global cap bounds
// memory against Byzantine flooding of never-registered pids.
//
// The dispatcher is the receive-side choke point of the whole stack, so
// it is also the primary instrumentation site: once an environment calls
// attach_obs(), every routed frame counts messages/bytes per protocol
// layer and the handler's CPU time feeds a latency histogram.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "core/env.hpp"
#include "core/message.hpp"
#include "obs/metrics.hpp"

namespace sintra::core {

class Dispatcher {
 public:
  using Handler = std::function<void(PartyId from, BytesView payload)>;

  /// Maximum buffered early messages across all unregistered pids.
  static constexpr std::size_t kMaxBuffered = 100000;

  /// Registers a handler and synchronously replays any buffered messages
  /// for this pid.  Throws std::logic_error on duplicate registration.
  void register_pid(const std::string& pid, Handler handler);

  /// Removes the handler; later messages for this pid are dropped if the
  /// pid is also marked retired (finished protocols must not re-buffer).
  void unregister_pid(const std::string& pid);

  /// Routes one wire message.  Malformed frames are dropped (Byzantine
  /// senders can always produce garbage; that must never throw past here).
  void on_message(PartyId from, BytesView wire);

  [[nodiscard]] std::size_t buffered_count() const { return buffered_total_; }

  /// Turns on instrumentation: per-layer message/byte counters and
  /// handler-latency histograms in obs::registry(), plus kRecv trace
  /// events stamped with `now_fn` (the owning environment's clock —
  /// virtual time in the simulator, wall-clock in the net stack).
  /// Frames whose pid has no registered handler are counted under the
  /// single fixed layer "unrouted" so Byzantine pids cannot grow the
  /// registry.  Idempotent; never influences routing behaviour.
  void attach_obs(int party, std::function<double()> now_fn);

 private:
  struct LayerMetrics {
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Histogram* handle_ms = nullptr;
  };
  LayerMetrics& layer_metrics(const std::string& layer);

  std::map<std::string, Handler> handlers_;
  std::map<std::string, std::deque<std::pair<PartyId, Bytes>>> buffers_;
  std::map<std::string, bool> retired_;
  std::size_t buffered_total_ = 0;

  bool obs_attached_ = false;
  int obs_party_ = -1;
  std::function<double()> obs_now_;
  obs::Counter* obs_malformed_ = nullptr;
  obs::Counter* obs_early_ = nullptr;
  obs::Counter* obs_bytes_moved_ = nullptr;
  std::map<std::string, LayerMetrics> layer_metrics_;
};

}  // namespace sintra::core
