// Wire framing: every SINTRA message is (protocol id, payload).  The
// protocol identifier routes the message to the right protocol instance
// (paper §2: "Every protocol instance is identified by a protocol
// identifier, which must be included in all cryptographic operations of
// the instance").
#pragma once

#include <string>

#include "util/bytes.hpp"
#include "util/serde.hpp"

namespace sintra::core {

struct WireMessage {
  std::string pid;
  Bytes payload;
};

/// Frames payload under a protocol id.
Bytes frame_message(std::string_view pid, BytesView payload);

/// Parses a frame; throws SerdeError on malformed input.
WireMessage parse_frame(BytesView wire);

}  // namespace sintra::core
