// Wire framing: every SINTRA message is (protocol id, payload).  The
// protocol identifier routes the message to the right protocol instance
// (paper §2: "Every protocol instance is identified by a protocol
// identifier, which must be included in all cryptographic operations of
// the instance").
#pragma once

#include <string>

#include "util/bytes.hpp"
#include "util/serde.hpp"

namespace sintra::core {

struct WireMessage {
  std::string pid;
  Bytes payload;
};

/// Non-owning parse result: `payload` aliases the wire buffer, so it is
/// only valid while that buffer lives.  The dispatcher hot path routes
/// this view straight into the handler instead of copying every payload.
struct WireMessageView {
  std::string pid;
  BytesView payload;
};

/// Frames payload under a protocol id.
Bytes frame_message(std::string_view pid, BytesView payload);

/// Parses a frame; throws SerdeError on malformed input.
WireMessage parse_frame(BytesView wire);

/// Parses a frame without copying the payload out of the wire buffer.
WireMessageView parse_frame_view(BytesView wire);

}  // namespace sintra::core
