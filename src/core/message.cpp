#include "core/message.hpp"

namespace sintra::core {

Bytes frame_message(std::string_view pid, BytesView payload) {
  Writer w;
  w.str(pid);
  w.raw(payload);
  return std::move(w).take();
}

WireMessage parse_frame(BytesView wire) {
  Reader r(wire);
  WireMessage out;
  out.pid = r.str();
  out.payload = r.raw(r.remaining());
  return out;
}

WireMessageView parse_frame_view(BytesView wire) {
  Reader r(wire);
  WireMessageView out;
  out.pid = r.str();
  out.payload = r.raw_view(r.remaining());
  return out;
}

}  // namespace sintra::core
