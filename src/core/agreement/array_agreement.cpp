#include "core/agreement/array_agreement.hpp"

#include <algorithm>
#include <numeric>

#include "crypto/sha256.hpp"

namespace sintra::core {

namespace {
constexpr std::uint8_t kVoteTag = 1;
}  // namespace

ArrayAgreement::ArrayAgreement(Environment& env, Dispatcher& dispatcher,
                               const std::string& pid,
                               ArrayValidator validator, CandidateOrder order)
    : Protocol(env, dispatcher, pid),
      validator_(std::move(validator)),
      order_(order) {
  // Candidate order Π: identical at every party.  "Random-local" derives
  // it from the (common) pid — load balancing without extra communication
  // (paper §2.4, second variation).
  permutation_.resize(static_cast<std::size_t>(env.n()));
  std::iota(permutation_.begin(), permutation_.end(), 0);
  if (order_ == CandidateOrder::kRandomLocal) {
    const Bytes digest = crypto::Sha256::hash(to_bytes(pid));
    std::uint64_t seed = 0;
    for (int i = 0; i < 8; ++i) seed = (seed << 8) | digest[static_cast<std::size_t>(i)];
    Rng perm_rng(seed);
    std::shuffle(permutation_.begin(), permutation_.end(), perm_rng);
  }

  // One verifiable consistent broadcast per potential proposer.
  proposals_.reserve(static_cast<std::size_t>(env.n()));
  for (int j = 0; j < env.n(); ++j) {
    proposals_.push_back(std::make_unique<VerifiableConsistentBroadcast>(
        env, dispatcher, pid + ".cb", j));
    // Store before wiring: a buffered final replayed during construction
    // makes the setter fire on_proposal_delivered(j) immediately, which
    // indexes proposals_[j].
    proposals_.back()->set_deliver_callback([this, j](const Bytes&) {
      on_proposal_delivered(j);
    });
  }
  activate();
}

ArrayAgreement::~ArrayAgreement() = default;

int ArrayAgreement::candidate_of(int iteration) const {
  return permutation_[static_cast<std::size_t>(iteration) %
                      permutation_.size()];
}

std::string ArrayAgreement::vba_pid(int iteration) const {
  return pid() + ".vba." + std::to_string(iteration);
}

void ArrayAgreement::propose(BytesView value) {
  if (proposed_) throw std::logic_error("ArrayAgreement: already proposed");
  if (!validator_(value))
    throw std::invalid_argument(
        "ArrayAgreement::propose: value fails the validator");
  proposed_ = true;
  own_value_ = Bytes(value.begin(), value.end());
  proposals_[static_cast<std::size_t>(env_.self())]->send(value);
  maybe_enter_loop();
}

void ArrayAgreement::on_proposal_delivered(int sender) {
  if (decided_.has_value()) return;
  const auto& payload =
      proposals_[static_cast<std::size_t>(sender)]->delivered();
  if (!payload || !validator_(*payload)) return;  // invalid proposal: ignore
  valid_proposals_.insert(sender);
  maybe_enter_loop();
}

void ArrayAgreement::maybe_enter_loop() {
  if (in_loop_ || !proposed_ || decided_.has_value()) return;
  if (static_cast<int>(valid_proposals_.size()) < env_.n() - env_.t()) return;
  in_loop_ = true;
  start_iteration(0);
}

void ArrayAgreement::start_iteration(int iteration) {
  iteration_ = iteration;
  vba_started_ = false;
  votes_.clear();
  const int cand = candidate_of(iteration);

  // (a) yes-vote with the closing message iff we accepted the candidate's
  // proposal; no-vote otherwise.
  const bool have = valid_proposals_.contains(cand);
  Writer w;
  w.u8(kVoteTag);
  w.u32(static_cast<std::uint32_t>(iteration));
  w.u8(have ? 1 : 0);
  if (have) {
    w.bytes(*proposals_[static_cast<std::size_t>(cand)]->get_closing());
  } else {
    w.bytes(Bytes{});
  }
  send_all(w.data());
  maybe_start_vba(iteration);
}

void ArrayAgreement::on_message(PartyId from, BytesView payload) {
  if (decided_.has_value()) return;
  try {
    Reader r(payload);
    if (r.u8() != kVoteTag) return;
    handle_vote(from, r);
  } catch (const SerdeError&) {
    // drop
  }
}

void ArrayAgreement::handle_vote(PartyId from, Reader& r) {
  const int iteration = static_cast<int>(r.u32());
  const bool yes = r.u8() != 0;
  const Bytes closing = r.bytes();
  r.expect_end();
  if (iteration < 0 || iteration > env_.n() * 64) return;  // sanity bound

  const int cand = candidate_of(iteration);
  if (yes) {
    // Yes-votes only count with a valid closing (paper step b) — and the
    // closing lets us deliver the candidate's broadcast ourselves.
    auto& cb = *proposals_[static_cast<std::size_t>(cand)];
    if (!VerifiableConsistentBroadcast::is_valid_closing(env_.keys(),
                                                         cb.pid(), closing)) {
      return;
    }
    const auto payload =
        VerifiableConsistentBroadcast::payload_from_closing(closing);
    if (!payload || !validator_(*payload)) return;
    cb.deliver_closing(closing);  // triggers on_proposal_delivered
    if (decided_.has_value()) return;
  }

  if (iteration != iteration_ || !in_loop_) {
    // Early/late vote: remember it only if it is for a future iteration.
    if (in_loop_ && iteration < iteration_) return;
    future_votes_[iteration].emplace(from, yes);
    return;
  }
  votes_.emplace(from, yes);
  maybe_start_vba(iteration);
}

void ArrayAgreement::maybe_start_vba(int iteration) {
  if (vba_started_ || iteration != iteration_ || !in_loop_) return;
  // Merge any buffered votes for this iteration.
  auto fut = future_votes_.find(iteration);
  if (fut != future_votes_.end()) {
    for (const auto& [voter, yes] : fut->second) votes_.emplace(voter, yes);
    future_votes_.erase(fut);
  }
  if (static_cast<int>(votes_.size()) < env_.n() - env_.t()) return;
  vba_started_ = true;

  const int cand = candidate_of(iteration);
  auto& cb = *proposals_[static_cast<std::size_t>(cand)];
  const std::string cb_pid = cb.pid();

  // (c) biased validated binary agreement: 1 must be proven by the
  // candidate's closing message; 0 is vacuously valid.
  BinaryValidator vba_validator =
      [this, cb_pid](bool value, BytesView proof) {
        if (!value) return true;
        if (!VerifiableConsistentBroadcast::is_valid_closing(env_.keys(),
                                                             cb_pid, proof)) {
          return false;
        }
        const auto payload =
            VerifiableConsistentBroadcast::payload_from_closing(proof);
        return payload.has_value() && validator_(*payload);
      };
  vba_ = std::make_unique<ValidatedAgreement>(env_, dispatcher_,
                                              vba_pid(iteration),
                                              std::move(vba_validator),
                                              /*bias=*/true);
  vba_->set_decide_callback([this, iteration](bool selected) {
    on_vba_decided(iteration, selected);
  });
  if (!vba_ || iteration != iteration_) {
    // The agreement decided while we wired the callback: the dispatcher
    // had a buffered DECIDE from a faster peer and replayed it inside the
    // constructor.  on_vba_decided already ran (moving vba_ away and
    // possibly starting the next iteration) — nothing left to propose.
    return;
  }
  const bool have = valid_proposals_.contains(cand);
  if (have) {
    vba_->propose(true, *cb.get_closing());
  } else {
    vba_->propose(false, {});
  }
}

void ArrayAgreement::on_vba_decided(int iteration, bool selected) {
  if (decided_.has_value() || iteration != iteration_) return;
  if (!selected) {
    // (d) candidate rejected: keep the finished instance alive (late
    // DECIDE rebroadcasts already went out) and move on.
    finished_vbas_.push_back(std::move(vba_));
    start_iteration(iteration + 1);
    return;
  }
  const int cand = candidate_of(iteration);
  auto& cb = *proposals_[static_cast<std::size_t>(cand)];
  if (!cb.delivered().has_value()) {
    // Step 3: recover the proposal from the agreement's validation proof.
    cb.deliver_closing(vba_->proof());
  }
  finished_vbas_.push_back(std::move(vba_));
  finish(cand);
}

void ArrayAgreement::finish(int candidate) {
  const auto& payload =
      proposals_[static_cast<std::size_t>(candidate)]->delivered();
  if (!payload.has_value()) return;  // cannot happen with a valid proof
  decided_ = *payload;
  decided_candidate_ = candidate;
  if (decide_cb_) decide_cb_(*decided_);
}

void ArrayAgreement::abort() {
  for (auto& cb : proposals_) cb->abort();
  if (vba_) vba_->abort();
  Protocol::abort();
}

}  // namespace sintra::core
