// ValidatedAgreement is a thin header-only wrapper over the agreement
// engine; this translation unit anchors the target.
#include "core/agreement/validated_agreement.hpp"
