#include "core/agreement/binary_agreement.hpp"

#include <set>

#include "obs/trace.hpp"

namespace sintra::core {

namespace {
enum class Tag : std::uint8_t {
  kPreVote = 1,
  kMainVote = 2,
  kCoinShare = 3,
  kDecide = 4,
};
}  // namespace

BinaryAgreementEngine::BinaryAgreementEngine(Environment& env,
                                             Dispatcher& dispatcher,
                                             const std::string& pid,
                                             Options options)
    : Protocol(env, dispatcher, pid), options_(std::move(options)) {
  auto& reg = obs::registry();
  const obs::Labels labels =
      obs::party_layer_labels(env.self(), obs::layer_of(pid));
  m_decisions_ = &reg.counter("ba.decisions", labels);
  m_coin_shares_released_ = &reg.counter("ba.coin_shares_released", labels);
  m_coins_assembled_ = &reg.counter("ba.coins_assembled", labels);
  m_rounds_to_decide_ = &reg.histogram("ba.rounds_to_decide", labels);
  activate();
}

// --- statements ---

Bytes BinaryAgreementEngine::pre_statement(int r, bool b) const {
  Writer w;
  w.str("ba-pre");
  w.str(pid());
  w.u32(static_cast<std::uint32_t>(r));
  w.u8(b ? 1 : 0);
  return std::move(w).take();
}

Bytes BinaryAgreementEngine::main_statement(int r, std::uint8_t v) const {
  Writer w;
  w.str("ba-main");
  w.str(pid());
  w.u32(static_cast<std::uint32_t>(r));
  w.u8(v);
  return std::move(w).take();
}

Bytes BinaryAgreementEngine::coin_name(int r) const {
  Writer w;
  w.str("ba-coin");
  w.str(pid());
  w.u32(static_cast<std::uint32_t>(r));
  return std::move(w).take();
}

// --- wire encoding ---

void BinaryAgreementEngine::write_justification(Writer& w,
                                                const Justification& j) {
  w.u8(j.kind);
  w.bytes(j.sig);
  w.u32(static_cast<std::uint32_t>(j.coin_shares.size()));
  for (const auto& [idx, share] : j.coin_shares) {
    w.u32(static_cast<std::uint32_t>(idx));
    w.bytes(share);
  }
}

BinaryAgreementEngine::Justification BinaryAgreementEngine::read_justification(
    Reader& r) {
  Justification j;
  j.kind = r.u8();
  j.sig = r.bytes();
  const std::uint32_t count = r.u32();
  if (count > 1024) throw SerdeError("justification: too many coin shares");
  for (std::uint32_t i = 0; i < count; ++i) {
    const int idx = static_cast<int>(r.u32());
    j.coin_shares.emplace_back(idx, r.bytes());
  }
  return j;
}

void BinaryAgreementEngine::write_pre_vote(Writer& w, const PreVote& pv) {
  w.u8(pv.b ? 1 : 0);
  w.bytes(pv.proof);
  write_justification(w, pv.just);
  w.bytes(pv.share);
}

BinaryAgreementEngine::PreVote BinaryAgreementEngine::read_pre_vote(Reader& r) {
  PreVote pv;
  pv.b = r.u8() != 0;
  pv.proof = r.bytes();
  pv.just = read_justification(r);
  pv.share = r.bytes();
  return pv;
}

// --- verification ---

bool BinaryAgreementEngine::valid_by_validator(bool b, BytesView proof) const {
  return options_.validator ? options_.validator(b, proof) : true;
}

bool BinaryAgreementEngine::verify_pre_vote(int r, PartyId voter,
                                            const PreVote& pv) const {
  const auto& sig = *env_.keys().sig_agreement;
  if (!sig.verify_share(pre_statement(r, pv.b), voter, pv.share)) return false;
  if (!valid_by_validator(pv.b, pv.proof)) return false;

  switch (pv.just.kind) {
    case 1:
      return r == 1;
    case 2:  // hard: threshold sig on pre-vote(r-1, b)
      return r >= 2 && sig.verify(pre_statement(r - 1, pv.b), pv.just.sig);
    case 3: {  // soft: abstain sig + coin of round r-1
      if (r < 2) return false;
      if (!sig.verify(main_statement(r - 1, kAbstain), pv.just.sig))
        return false;
      if (options_.bias.has_value() && r == 2) {
        return pv.b == *options_.bias;  // round-1 coin replaced by the bias
      }
      const auto& coin = *env_.keys().coin;
      const Bytes name = coin_name(r - 1);
      std::set<int> seen;
      for (const auto& [idx, share] : pv.just.coin_shares) {
        if (!seen.insert(idx).second) return false;
      }
      if (static_cast<int>(pv.just.coin_shares.size()) < coin.k())
        return false;
      // One batched DLEQ check over the whole justification instead of a
      // per-share verify; any invalid share rejects the pre-vote exactly
      // as the scalar loop did.
      for (const bool ok :
           coin.verify_shares_batch(name, pv.just.coin_shares)) {
        if (!ok) return false;
      }
      try {
        return coin.assemble_bit(name, pv.just.coin_shares) == pv.b;
      } catch (const std::invalid_argument&) {
        return false;
      }
    }
    default:
      return false;
  }
}

bool BinaryAgreementEngine::verify_main_vote(int r, PartyId voter,
                                             const MainVote& mv) const {
  const auto& sig = *env_.keys().sig_agreement;
  if (mv.v != 0 && mv.v != 1 && mv.v != kAbstain) return false;
  if (!sig.verify_share(main_statement(r, mv.v), voter, mv.share))
    return false;
  if (mv.v != kAbstain) {
    const bool b = mv.v == 1;
    return valid_by_validator(b, mv.proof) &&
           sig.verify(pre_statement(r, b), mv.sig);
  }
  // Abstain: must exhibit justified pre-votes for both bits.
  if (mv.pv0.b || !mv.pv1.b) return false;
  return verify_pre_vote(r, mv.voter0, mv.pv0) &&
         verify_pre_vote(r, mv.voter1, mv.pv1);
}

// --- protocol ---

void BinaryAgreementEngine::propose(bool value, BytesView proof) {
  if (proposed_ || decided_.has_value()) return;
  if (!valid_by_validator(value, proof))
    throw std::invalid_argument(
        "BinaryAgreement::propose: proof fails the validator");
  proposed_ = true;
  Justification just;
  just.kind = 1;
  start_round(1, value, Bytes(proof.begin(), proof.end()), std::move(just));
}

void BinaryAgreementEngine::start_round(int r, bool b, Bytes proof,
                                        Justification just) {
  current_round_ = r;
  remember_proof(b, proof);
  PreVote pv;
  pv.b = b;
  pv.proof = std::move(proof);
  pv.just = std::move(just);
  pv.share = env_.keys().sig_agreement->sign_share(pre_statement(r, b));
  Writer w;
  w.u8(static_cast<std::uint8_t>(Tag::kPreVote));
  w.u32(static_cast<std::uint32_t>(r));
  write_pre_vote(w, pv);
  send_all(w.data());
  // Buffered votes for this round may already satisfy the thresholds.
  try_main_vote(r);
  try_finish_round(r);
}

void BinaryAgreementEngine::remember_proof(bool b, const Bytes& proof) {
  auto& slot = known_proof_[b ? 1 : 0];
  if (!slot.has_value() && valid_by_validator(b, proof)) slot = proof;
}

void BinaryAgreementEngine::on_message(PartyId from, BytesView payload) {
  if (decided_.has_value()) return;
  try {
    Reader r(payload);
    const Tag tag = static_cast<Tag>(r.u8());
    switch (tag) {
      case Tag::kPreVote:
        handle_pre_vote(from, r);
        return;
      case Tag::kMainVote:
        handle_main_vote(from, r);
        return;
      case Tag::kCoinShare:
        handle_coin_share(from, r);
        return;
      case Tag::kDecide:
        handle_decide(from, r);
        return;
      default:
        return;
    }
  } catch (const SerdeError&) {
    // Byzantine garbage: drop.
  }
}

void BinaryAgreementEngine::handle_pre_vote(PartyId from, Reader& rd) {
  const int r = static_cast<int>(rd.u32());
  if (r < 1 || r > current_round_ + 1000) return;  // sanity bound
  PreVote pv = read_pre_vote(rd);
  rd.expect_end();
  Round& st = round(r);
  if (st.pre_votes.contains(from)) return;
  if (!verify_pre_vote(r, from, pv)) return;
  remember_proof(pv.b, pv.proof);
  st.pre_votes.emplace(from, std::move(pv));
  try_main_vote(r);
}

void BinaryAgreementEngine::try_main_vote(int r) {
  if (!proposed_ || decided_.has_value()) return;
  if (r != current_round_) return;
  Round& st = round(r);
  if (st.main_voted) return;
  const int quorum = env_.n() - env_.t();
  if (static_cast<int>(st.pre_votes.size()) < quorum) return;
  st.main_voted = true;

  int count[2] = {0, 0};
  PartyId voter_of[2] = {-1, -1};
  for (const auto& [voter, pv] : st.pre_votes) {
    count[pv.b ? 1 : 0]++;
    voter_of[pv.b ? 1 : 0] = voter;
  }

  MainVote mv;
  if (count[0] > 0 && count[1] > 0) {
    mv.v = kAbstain;
    mv.voter0 = voter_of[0];
    mv.voter1 = voter_of[1];
    mv.pv0 = st.pre_votes.at(mv.voter0);
    mv.pv1 = st.pre_votes.at(mv.voter1);
  } else {
    const bool b = count[1] > 0;
    mv.v = b ? 1 : 0;
    mv.proof = known_proof_[b ? 1 : 0].value_or(Bytes{});
    // Assemble the threshold signature from the unanimous pre-vote shares.
    std::vector<std::pair<int, Bytes>> shares;
    for (const auto& [voter, pv] : st.pre_votes) {
      shares.emplace_back(voter, pv.share);
    }
    mv.sig = env_.keys().sig_agreement->combine(pre_statement(r, b), shares);
  }
  mv.share = env_.keys().sig_agreement->sign_share(main_statement(r, mv.v));

  Writer w;
  w.u8(static_cast<std::uint8_t>(Tag::kMainVote));
  w.u32(static_cast<std::uint32_t>(r));
  w.u8(mv.v);
  if (mv.v != kAbstain) {
    w.bytes(mv.proof);
    w.bytes(mv.sig);
  } else {
    w.u32(static_cast<std::uint32_t>(mv.voter0));
    write_pre_vote(w, mv.pv0);
    w.u32(static_cast<std::uint32_t>(mv.voter1));
    write_pre_vote(w, mv.pv1);
  }
  w.bytes(mv.share);
  send_all(w.data());
}

void BinaryAgreementEngine::handle_main_vote(PartyId from, Reader& rd) {
  const int r = static_cast<int>(rd.u32());
  if (r < 1 || r > current_round_ + 1000) return;
  MainVote mv;
  mv.v = rd.u8();
  if (mv.v != kAbstain) {
    mv.proof = rd.bytes();
    mv.sig = rd.bytes();
  } else {
    mv.voter0 = static_cast<int>(rd.u32());
    mv.pv0 = read_pre_vote(rd);
    mv.voter1 = static_cast<int>(rd.u32());
    mv.pv1 = read_pre_vote(rd);
  }
  mv.share = rd.bytes();
  rd.expect_end();

  Round& st = round(r);
  if (st.main_votes.contains(from)) return;
  if (!verify_main_vote(r, from, mv)) return;
  if (mv.v != kAbstain) {
    remember_proof(mv.v == 1, mv.proof);
  } else {
    remember_proof(false, mv.pv0.proof);
    remember_proof(true, mv.pv1.proof);
  }
  st.main_votes.emplace(from, std::move(mv));
  try_finish_round(r);
}

void BinaryAgreementEngine::try_finish_round(int r) {
  if (!proposed_ || decided_.has_value()) return;
  if (r != current_round_) return;
  Round& st = round(r);
  if (!st.main_voted) return;
  const int quorum = env_.n() - env_.t();

  // A decision is possible whenever n-t bit main-votes agree — even after
  // the coin phase started.
  for (int bit = 0; bit < 2; ++bit) {
    std::vector<std::pair<int, Bytes>> shares;
    Bytes proof;
    for (const auto& [voter, mv] : st.main_votes) {
      if (mv.v == bit) {
        shares.emplace_back(voter, mv.share);
        proof = mv.proof;
      }
    }
    if (static_cast<int>(shares.size()) >= quorum) {
      const Bytes sig = env_.keys().sig_agreement->combine(
          main_statement(r, static_cast<std::uint8_t>(bit)), shares);
      decide(bit == 1, std::move(proof), sig, r);
      return;
    }
  }

  if (static_cast<int>(st.main_votes.size()) < quorum) return;
  if (!st.snapshot_taken) {
    st.snapshot_taken = true;
    if (options_.bias.has_value() && r == 1) {
      // The round-1 coin is replaced by the bias: no coin exchange.
      advance(r, options_.bias);
      return;
    }
    if (!st.coin_share_sent) {
      st.coin_share_sent = true;
      m_coin_shares_released_->inc();
      obs::emit(obs::EventType::kCoinRelease, env_.now_ms(), env_.self(), -1,
                pid(), 0, r);
      const Bytes share = env_.keys().coin->release(coin_name(r));
      Writer w;
      w.u8(static_cast<std::uint8_t>(Tag::kCoinShare));
      w.u32(static_cast<std::uint32_t>(r));
      w.bytes(share);
      send_all(w.data());
    }
  }
  try_advance_with_coin(r);
}

void BinaryAgreementEngine::handle_coin_share(PartyId from, Reader& rd) {
  const int r = static_cast<int>(rd.u32());
  if (r < 1 || r > current_round_ + 1000) return;
  Bytes share = rd.bytes();
  rd.expect_end();
  Round& st = round(r);
  // Optimistic path: buffer the share unverified (deduped per signer —
  // at most n entries); verification happens wholesale when a quorum is
  // handed to assemble_bit_checked.
  if (!st.coin_shares.emplace(from, share).second) return;
  if (st.coin) st.coin->add(from, std::move(share));
  try_finish_round(r);
}

void BinaryAgreementEngine::try_advance_with_coin(int r) {
  Round& st = round(r);
  if (st.advanced || !st.snapshot_taken) return;
  if (st.coin) return;  // collector drives the rest (or already delivered)
  // Built only after the snapshot so no coin work happens for rounds that
  // decide without the coin — same gating as the eager implementation.
  const Bytes name = coin_name(r);
  std::shared_ptr<crypto::ThresholdCoin> coin = env_.keys().coin;
  st.coin = std::make_unique<ShareCollector<CoinResult>>(
      env_.crypto_pool(), coin->k(),
      [coin, name, pool = &env_.crypto_pool()](
          const ShareCollector<CoinResult>::Shares& shares) {
        // Pool pointer: a Byzantine-triggered fallback verifies the k
        // chosen shares in parallel instead of serial bisection.
        return coin->assemble_bit_checked(name, shares, pool);
      },
      [this, r](CoinResult res) {
        Round& rst = round(r);
        rst.coin_value = res.first;
        rst.coin_used = std::move(res.second);
        m_coins_assembled_->inc();
        advance(r, rst.coin_value);
      });
  for (const auto& [idx, buffered] : st.coin_shares) {
    st.coin->add(idx, buffered);
  }
}

void BinaryAgreementEngine::advance(int r, std::optional<bool> coin) {
  Round& st = round(r);
  if (st.advanced || decided_.has_value()) return;
  st.advanced = true;

  // Hard pre-vote if any bit main-vote was seen, else follow the coin.
  for (const auto& [voter, mv] : st.main_votes) {
    if (mv.v != kAbstain) {
      Justification just;
      just.kind = 2;
      just.sig = mv.sig;  // threshold sig on pre-vote(r, b)
      start_round(r + 1, mv.v == 1, mv.proof, std::move(just));
      return;
    }
  }
  // All abstain: soft pre-vote with the coin value.
  const bool b = coin.value();
  std::vector<std::pair<int, Bytes>> abstain_shares;
  for (const auto& [voter, mv] : st.main_votes) {
    abstain_shares.emplace_back(voter, mv.share);
  }
  Justification just;
  just.kind = 3;
  just.sig = env_.keys().sig_agreement->combine(main_statement(r, kAbstain),
                                                abstain_shares);
  if (!(options_.bias.has_value() && r == 1)) {
    // Only the *verified* shares behind the assembled coin may travel in
    // the justification: peers reject a kind-3 pre-vote whose share set
    // contains a single invalid share, so forwarding unverified buffered
    // shares would let one Byzantine signer suppress our pre-vote.
    just.coin_shares = st.coin_used;
  }
  start_round(r + 1, b, known_proof_[b ? 1 : 0].value_or(Bytes{}),
              std::move(just));
}

void BinaryAgreementEngine::handle_decide(PartyId from, Reader& rd) {
  (void)from;
  const int r = static_cast<int>(rd.u32());
  const bool b = rd.u8() != 0;
  Bytes proof = rd.bytes();
  Bytes sig = rd.bytes();
  rd.expect_end();
  if (r < 1) return;
  if (!env_.keys().sig_agreement->verify(main_statement(r, b ? 1 : 0), sig))
    return;
  if (!valid_by_validator(b, proof)) return;
  decide(b, std::move(proof), sig, r);
}

void BinaryAgreementEngine::decide(bool b, Bytes proof, const Bytes& sig,
                                   int round) {
  if (decided_.has_value()) return;
  decided_ = b;
  decision_proof_ = std::move(proof);
  decision_round_ = round;
  m_decisions_->inc();
  m_rounds_to_decide_->observe(static_cast<double>(round));
  obs::emit(obs::EventType::kDecide, env_.now_ms(), env_.self(), -1, pid(), 0,
            b ? 1.0 : 0.0, "r" + std::to_string(round));
  if (!decide_broadcast_) {
    decide_broadcast_ = true;
    Writer w;
    w.u8(static_cast<std::uint8_t>(Tag::kDecide));
    w.u32(static_cast<std::uint32_t>(round));
    w.u8(b ? 1 : 0);
    w.bytes(decision_proof_);
    w.bytes(sig);
    send_all(w.data());
  }
  if (decide_cb_) decide_cb_(b);
  deactivate();
}

}  // namespace sintra::core
