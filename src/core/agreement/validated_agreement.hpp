// Validated (binary) Byzantine agreement with external validity and
// optional bias (paper §2.3 end, §3.3 ValidatedAgreement).
//
// The engine already implements validation and bias; this class is the
// user-facing API mirroring the paper's Java class: propose(value, proof),
// decide(), getProof().
#pragma once

#include <optional>

#include "core/agreement/binary_agreement.hpp"

namespace sintra::core {

class ValidatedAgreement final : public BinaryAgreementEngine {
 public:
  /// `validator` is consulted for every vote; `bias`, if set, biases the
  /// agreement toward that value (paper: "always decides for the preferred
  /// value when it detects that an honest party proposed it").
  ValidatedAgreement(Environment& env, Dispatcher& dispatcher,
                     const std::string& pid, BinaryValidator validator,
                     std::optional<bool> bias = std::nullopt)
      : BinaryAgreementEngine(env, dispatcher, pid,
                              {std::move(validator), bias}) {}

  /// The proof that establishes the validity of the decided value
  /// (the Java API's getProof()).
  [[nodiscard]] const Bytes& proof() const { return decision_proof(); }
};

}  // namespace sintra::core
