// Randomized binary Byzantine agreement — the Cachin–Kursawe–Shoup
// protocol (PODC 2000; paper §2.3), including the *validated* (external
// validity) and *biased* variants used by multi-valued agreement.
//
// Each round has three exchanges:
//   1. pre-vote(r, b)   — justified (see below) and accompanied by a
//                         threshold-signature share on the pre-vote
//                         statement;
//   2. main-vote(r, v)  — v ∈ {0, 1, abstain}; a bit main-vote is
//                         justified by a threshold signature assembled
//                         from n−t unanimous pre-vote shares, an abstain
//                         by exhibiting justified pre-votes for both bits;
//   3. coin             — if the n−t collected main-votes are not a
//                         unanimous bit, parties release shares of the
//                         round's threshold coin.
// A party decides b on n−t unanimous bit main-votes; the assembled
// threshold signature on that statement is a transferable decision proof
// broadcast in a DECIDE message so every party terminates.
//
// Justifications of a round-r pre-vote for b:
//   - r = 1: the proposer's own input (validated: an external proof
//     checked by the validator);
//   - "hard": a threshold signature on pre-vote(r−1, b) — carried over
//     from a bit main-vote seen in round r−1;
//   - "soft": a threshold signature on main-vote(r−1, abstain) plus the
//     round-(r−1) coin (k verifiable coin shares); b must equal the coin.
// In the biased variant the round-1 coin is replaced by the bias
// (paper §2.3), so a round-2 soft pre-vote needs no coin shares.
//
// External validity: every pre-vote and bit main-vote for b carries a
// proof accepted by the validator.  Abstain justifications embed full
// pre-votes for both bits — which is exactly why a party that must follow
// the coin always possesses a valid proof for the coin's value.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/protocol.hpp"
#include "core/share_collector.hpp"
#include "obs/metrics.hpp"

namespace sintra::core {

/// External validity predicate (the Java API's BinaryValidator, §3.3).
using BinaryValidator = std::function<bool(bool value, BytesView proof)>;

class BinaryAgreementEngine : public Protocol {
 public:
  struct Options {
    BinaryValidator validator;     // nullptr => plain (everything valid)
    std::optional<bool> bias;      // biased variant (paper §2.3)
  };

  BinaryAgreementEngine(Environment& env, Dispatcher& dispatcher,
                        const std::string& pid, Options options);

  /// Starts the protocol; exactly once.  In validated mode `proof` must
  /// satisfy the validator for `value`.
  void propose(bool value, BytesView proof);

  [[nodiscard]] const std::optional<bool>& decided() const {
    return decided_;
  }
  /// Validation proof accompanying the decision (validated mode).
  [[nodiscard]] const Bytes& decision_proof() const { return decision_proof_; }
  /// Round in which this party decided (1-based; 0 if undecided) — used by
  /// the protocol-behaviour benchmarks.
  [[nodiscard]] int decision_round() const { return decision_round_; }

  void set_decide_callback(std::function<void(bool)> cb) {
    decide_cb_ = std::move(cb);
    // The dispatcher replays buffered messages synchronously while the
    // constructor registers the pid — a replayed DECIDE can settle the
    // agreement before the owner wires this callback.  Fire immediately
    // so a decision that raced the wiring is never lost.
    if (decided_.has_value() && decide_cb_) decide_cb_(*decided_);
  }

 protected:
  void on_message(PartyId from, BytesView payload) override;

 private:
  static constexpr std::uint8_t kAbstain = 2;

  struct Justification {
    std::uint8_t kind = 0;  // 1 round-1, 2 hard, 3 soft
    Bytes sig;              // hard: sig(SPre(r-1,b)); soft: sig(SMain(r-1,abstain))
    std::vector<std::pair<int, Bytes>> coin_shares;  // soft (unbiased round)
  };

  struct PreVote {
    bool b = false;
    Bytes proof;
    Justification just;
    Bytes share;  // threshold share on SPre(r, b)
  };

  struct MainVote {
    std::uint8_t v = kAbstain;
    Bytes proof;
    Bytes sig;  // bit vote: threshold sig on SPre(r, v)
    // abstain: embedded justified pre-votes for both bits
    int voter0 = -1, voter1 = -1;
    PreVote pv0, pv1;
    Bytes share;  // threshold share on SMain(r, v)
  };

  /// Assembled coin value plus the verified shares it was built from
  /// (crypto::ThresholdCoin::assemble_bit_checked).
  using CoinResult = std::pair<bool, std::vector<std::pair<int, Bytes>>>;

  struct Round {
    std::map<PartyId, PreVote> pre_votes;
    bool main_voted = false;
    std::map<PartyId, MainVote> main_votes;
    bool snapshot_taken = false;
    bool coin_share_sent = false;
    /// Coin shares buffered *unverified* (deduped by signer); fed to the
    /// collector once the round snapshot allows coin assembly.
    std::map<int, Bytes> coin_shares;
    /// Optimistic assembly: built lazily by try_advance_with_coin, hands
    /// quorums to assemble_bit_checked (possibly on the crypto pool).
    std::unique_ptr<ShareCollector<CoinResult>> coin;
    std::optional<bool> coin_value;
    /// The verified share set backing coin_value — the only shares safe
    /// to embed in a kind-3 (soft) justification, since peers reject a
    /// justification containing any invalid share.
    std::vector<std::pair<int, Bytes>> coin_used;
    bool advanced = false;
  };

  // --- statements bound into threshold signatures / the coin ---
  [[nodiscard]] Bytes pre_statement(int r, bool b) const;
  [[nodiscard]] Bytes main_statement(int r, std::uint8_t v) const;
  [[nodiscard]] Bytes coin_name(int r) const;

  // --- wire encoding ---
  static void write_justification(Writer& w, const Justification& j);
  static Justification read_justification(Reader& r);
  static void write_pre_vote(Writer& w, const PreVote& pv);
  static PreVote read_pre_vote(Reader& r);

  // --- verification (all tolerant of garbage; return false) ---
  [[nodiscard]] bool valid_by_validator(bool b, BytesView proof) const;
  [[nodiscard]] bool verify_pre_vote(int r, PartyId voter,
                                     const PreVote& pv) const;
  [[nodiscard]] bool verify_main_vote(int r, PartyId voter,
                                      const MainVote& mv) const;

  // --- protocol steps ---
  void start_round(int r, bool b, Bytes proof, Justification just);
  void handle_pre_vote(PartyId from, Reader& r);
  void handle_main_vote(PartyId from, Reader& r);
  void handle_coin_share(PartyId from, Reader& r);
  void handle_decide(PartyId from, Reader& r);
  void try_main_vote(int r);
  void try_finish_round(int r);
  void try_advance_with_coin(int r);
  void advance(int r, std::optional<bool> coin);
  void decide(bool b, Bytes proof, const Bytes& sig, int round);
  void remember_proof(bool b, const Bytes& proof);

  Round& round(int r) { return rounds_[r]; }

  Options options_;
  bool proposed_ = false;
  int current_round_ = 0;  // highest round we pre-voted in
  std::map<int, Round> rounds_;
  std::array<std::optional<Bytes>, 2> known_proof_;
  std::optional<bool> decided_;
  Bytes decision_proof_;
  int decision_round_ = 0;
  bool decide_broadcast_ = false;
  std::function<void(bool)> decide_cb_;

  // Instrumentation handles (obs/metrics.hpp); measurement only.
  obs::Counter* m_decisions_ = nullptr;
  obs::Counter* m_coin_shares_released_ = nullptr;
  obs::Counter* m_coins_assembled_ = nullptr;
  obs::Histogram* m_rounds_to_decide_ = nullptr;
};

/// Plain binary agreement (paper §3.3 BinaryAgreement): no validator, no
/// bias; proposals need no proof.
class BinaryAgreement final : public BinaryAgreementEngine {
 public:
  BinaryAgreement(Environment& env, Dispatcher& dispatcher,
                  const std::string& pid)
      : BinaryAgreementEngine(env, dispatcher, pid, {}) {}

  void propose(bool value) { BinaryAgreementEngine::propose(value, {}); }
};

}  // namespace sintra::core
