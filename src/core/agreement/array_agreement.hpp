// Multi-valued Byzantine agreement with external validity — the
// Cachin–Kursawe–Petzold–Shoup protocol (CRYPTO 2001; paper §2.4), called
// *array agreement* in SINTRA.
//
// Structure (paper §2.4):
//   1. every party proposes its value via verifiable consistent broadcast;
//      after accepting n−t predicate-valid proposals it enters the loop;
//   2. candidates Pa are examined in the order of a permutation Π —
//      either the identity ("fixed") or one derived pseudo-randomly from
//      the pid ("random-local", the load-balancing variant the paper
//      implemented):
//      (a) a party that accepted Pa's proposal sends a yes-VOTE carrying
//          the broadcast's closing message, else a no-VOTE;
//      (b) after n−t votes (yes-votes only counted with a valid closing,
//          which is also consumed to deliver Pa's broadcast locally),
//      (c) it runs binary agreement biased toward 1, proposing 1 with the
//          closing as external-validity proof iff it holds the proposal;
//      (d) a 1-decision selects Pa; a 0-decision moves to the next
//          candidate.
//   3. a party missing the selected proposal recovers it from the binary
//      agreement's decision proof (the closing message).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "core/agreement/validated_agreement.hpp"
#include "core/broadcast/consistent_broadcast.hpp"

namespace sintra::core {

/// External validity predicate over proposal values (the Java API's
/// ArrayValidator, §3.3).
using ArrayValidator = std::function<bool(BytesView value)>;

class ArrayAgreement final : public Protocol {
 public:
  enum class CandidateOrder { kFixed, kRandomLocal };

  ArrayAgreement(Environment& env, Dispatcher& dispatcher,
                 const std::string& pid, ArrayValidator validator,
                 CandidateOrder order = CandidateOrder::kRandomLocal);

  ~ArrayAgreement() override;

  /// Proposes this party's value; must satisfy the validator.
  void propose(BytesView value);

  [[nodiscard]] const std::optional<Bytes>& decided() const {
    return decided_;
  }
  /// The selected candidate's index (once decided).
  [[nodiscard]] int decided_candidate() const { return decided_candidate_; }
  /// Loop iterations executed (for the protocol-behaviour benchmarks: a
  /// rejected first candidate costs one extra binary agreement, the
  /// second band in Figure 5).
  [[nodiscard]] int iterations_used() const { return iteration_ + 1; }

  void set_decide_callback(std::function<void(const Bytes&)> cb) {
    decide_cb_ = std::move(cb);
    // Replay during construction can decide before the owner wires the
    // callback (see BinaryAgreementEngine::set_decide_callback).
    if (decided_.has_value() && decide_cb_) decide_cb_(*decided_);
  }

  void abort() override;

 protected:
  void on_message(PartyId from, BytesView payload) override;

 private:
  [[nodiscard]] int candidate_of(int iteration) const;
  [[nodiscard]] std::string vba_pid(int iteration) const;
  void on_proposal_delivered(int sender);
  void maybe_enter_loop();
  void start_iteration(int iteration);
  void handle_vote(PartyId from, Reader& r);
  void maybe_start_vba(int iteration);
  void on_vba_decided(int iteration, bool selected);
  void finish(int candidate);

  ArrayValidator validator_;
  CandidateOrder order_;
  std::vector<int> permutation_;

  bool proposed_ = false;
  Bytes own_value_;

  // One verifiable consistent broadcast per potential proposer.
  std::vector<std::unique_ptr<VerifiableConsistentBroadcast>> proposals_;
  std::set<int> valid_proposals_;  // senders whose payload passed validator_

  bool in_loop_ = false;
  int iteration_ = -1;
  // Votes of the current iteration (voter -> yes/no) and buffered votes
  // for iterations we have not reached yet.
  std::map<PartyId, bool> votes_;
  std::map<int, std::map<PartyId, bool>> future_votes_;
  bool vba_started_ = false;
  std::unique_ptr<ValidatedAgreement> vba_;
  // Finished agreement instances stay alive: their DECIDE rebroadcasts
  // already serve stragglers, and destroying one from inside its own
  // decide callback would be use-after-free.
  std::vector<std::unique_ptr<ValidatedAgreement>> finished_vbas_;

  std::optional<Bytes> decided_;
  int decided_candidate_ = -1;
  std::function<void(const Bytes&)> decide_cb_;
};

}  // namespace sintra::core
