// Optimistic share collection shared by every threshold-crypto consumer.
//
// The combine-first fast path (ISSUE: optimistic share verification) has
// the same shape everywhere it appears — BA coin rounds, the consistent
// broadcast echo quorum, TDH2 channel decryption: accumulate shares
// *unverified*, and once a threshold k is reached run one optimistic
// attempt (a scheme's *_checked combine, which verifies the single
// combined result and falls back to per-share verification plus local
// blacklisting on failure).  This helper centralizes that shape and the
// threading discipline around crypto::WorkPool:
//
//   - add() and the deliver callback run on the owner thread only
//     (protocol state is touched exclusively there);
//   - the attempt functor runs on a pool worker, so it must capture
//     shared ownership (scheme shared_ptrs, value copies) and be safe to
//     run concurrently with further add() calls — it only ever sees the
//     immutable snapshot it is handed;
//   - at most one attempt is in flight; shares arriving mid-attempt mark
//     the collector dirty and a failed attempt relaunches with the
//     enlarged snapshot.  A successful attempt delivers exactly once.
//
// With an inline pool (the simulator, and the default everywhere) the
// attempt runs synchronously inside add(), so behaviour and event order
// are identical to calling the scheme directly — simulated-time traces
// stay byte-identical run to run.
//
// Destroying the collector (owner thread) orphans any in-flight attempt:
// its completion still runs but finds owner_alive false and never calls
// deliver, so the protocol object behind the callback may die freely.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "crypto/work_pool.hpp"
#include "util/bytes.hpp"

namespace sintra::core {

template <typename Result>
class ShareCollector {
 public:
  using Shares = std::vector<std::pair<int, Bytes>>;
  /// One optimistic attempt over a snapshot of the collected shares.
  /// Pool-thread context: self-contained, shared ownership only.
  /// Returns nullopt when the snapshot cannot yield a verified result
  /// (the scheme has blacklisted whatever it could attribute); the
  /// collector then waits for more shares.
  using Attempt = std::function<std::optional<Result>(const Shares&)>;
  /// Receives the first successful result, once, on the owner thread.
  using Deliver = std::function<void(Result)>;

  ShareCollector(crypto::WorkPool& pool, int threshold, Attempt attempt,
                 Deliver deliver)
      : st_(std::make_shared<State>()) {
    st_->pool = &pool;
    st_->k = threshold;
    st_->attempt = std::move(attempt);
    st_->deliver = std::move(deliver);
  }

  ~ShareCollector() {
    if (st_) st_->owner_alive = false;
  }

  ShareCollector(const ShareCollector&) = delete;
  ShareCollector& operator=(const ShareCollector&) = delete;

  /// Records one share (owner thread).  Duplicate signers and shares
  /// arriving after delivery are ignored.  Returns whether the share was
  /// accepted into the pool of candidates — says nothing about validity,
  /// which only an attempt determines.
  bool add(int signer, Bytes share) {
    if (st_->done || !st_->seen.insert(signer).second) return false;
    st_->shares.emplace_back(signer, std::move(share));
    st_->dirty = true;
    maybe_launch(st_);
    return true;
  }

  [[nodiscard]] bool done() const { return st_->done; }
  [[nodiscard]] std::size_t size() const { return st_->shares.size(); }

 private:
  struct State {
    crypto::WorkPool* pool = nullptr;
    int k = 0;
    Attempt attempt;   // immutable after construction (pool threads read it)
    Deliver deliver;
    Shares shares;     // owner thread only
    std::set<int> seen;
    bool dirty = false;      // shares not yet covered by a launched snapshot
    bool in_flight = false;  // at most one attempt at a time
    bool done = false;
    bool owner_alive = true;  // cleared by ~ShareCollector
  };

  static void maybe_launch(const std::shared_ptr<State>& st) {
    if (st->done || st->in_flight || !st->dirty) return;
    if (static_cast<int>(st->shares.size()) < st->k) return;
    st->dirty = false;
    st->in_flight = true;
    auto result = std::make_shared<std::optional<Result>>();
    st->pool->submit(
        [st, snapshot = st->shares, result] { *result = st->attempt(snapshot); },
        [st, result] {
          st->in_flight = false;
          if (!st->owner_alive || st->done) return;
          if (result->has_value()) {
            st->done = true;
            st->deliver(std::move(**result));
          } else {
            maybe_launch(st);  // retry only if shares arrived mid-attempt
          }
        });
  }

  std::shared_ptr<State> st_;
};

}  // namespace sintra::core
