// Reliable broadcast — the Bracha–Toueg protocol (paper §2.2).
//
// Guarantees *agreement*: all honest parties deliver the same payload or
// none delivers at all.  Uses no public-key cryptography — only the
// (already authenticated) point-to-point links — at the price of O(n^2)
// messages:
//   1. the sender sends the payload to all parties;
//   2. every party echoes the first payload it received from the sender;
//   3. on ceil((n+t+1)/2) matching ECHOs or t+1 matching READYs, a party
//      sends READY;
//   4. on 2t+1 matching READYs, a party accepts and delivers.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "core/broadcast/broadcast_base.hpp"
#include "core/protocol.hpp"

namespace sintra::core {

class ReliableBroadcast : public Protocol, public BroadcastBase {
 public:
  /// The instance pid is basepid + "." + sender, mirroring the Java API
  /// (§3.2); `sender` is the distinguished sender's index.
  ReliableBroadcast(Environment& env, Dispatcher& dispatcher,
                    const std::string& basepid, PartyId sender);

  [[nodiscard]] PartyId sender() const { return sender_; }

  /// Starts the broadcast; only the sender may call this, exactly once.
  void send(BytesView payload);

  /// The delivered payload, once the protocol accepts one.
  [[nodiscard]] const std::optional<Bytes>& delivered() const {
    return delivered_;
  }

  /// Invoked exactly once on delivery.
  void set_deliver_callback(std::function<void(const Bytes&)> cb) {
    deliver_cb_ = std::move(cb);
    // Replay during construction can deliver before the owner wires the
    // callback (see BinaryAgreementEngine::set_decide_callback).
    if (delivered_.has_value() && deliver_cb_) deliver_cb_(*delivered_);
  }

  // --- BroadcastBase (the paper's Figure 2 Broadcast interface) ---
  [[nodiscard]] int broadcast_sender() const override { return sender_; }
  void send_broadcast(BytesView payload) override { send(payload); }
  [[nodiscard]] const std::optional<Bytes>& broadcast_delivered()
      const override {
    return delivered();
  }
  void abort_broadcast() override { abort(); }

 protected:
  void on_message(PartyId from, BytesView payload) override;

 private:
  enum class Tag : std::uint8_t { kSend = 0, kEcho = 1, kReady = 2 };

  void maybe_send_ready(const Bytes& digest, const Bytes& payload);
  void maybe_deliver(const Bytes& digest, const Bytes& payload);

  PartyId sender_;
  bool sent_ = false;
  bool echoed_ = false;
  bool readied_ = false;
  std::optional<Bytes> delivered_;
  std::function<void(const Bytes&)> deliver_cb_;

  // digest -> payload (first seen), and per-digest voter sets.
  std::map<Bytes, Bytes> payloads_;
  std::map<Bytes, std::set<PartyId>> echoes_;
  std::map<Bytes, std::set<PartyId>> readies_;
};

}  // namespace sintra::core
