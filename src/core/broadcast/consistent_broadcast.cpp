#include "core/broadcast/consistent_broadcast.hpp"

#include "crypto/sha256.hpp"

namespace sintra::core {

ConsistentBroadcast::ConsistentBroadcast(Environment& env,
                                         Dispatcher& dispatcher,
                                         const std::string& basepid,
                                         PartyId sender)
    : Protocol(env, dispatcher, basepid + "." + std::to_string(sender)),
      sender_(sender) {
  activate();
}

Bytes ConsistentBroadcast::signed_statement(const std::string& pid,
                                            BytesView payload) {
  Writer w;
  w.str("cb-echo");
  w.str(pid);
  w.bytes(crypto::Sha256::hash(payload));
  return std::move(w).take();
}

void ConsistentBroadcast::send(BytesView payload) {
  if (env_.self() != sender_)
    throw std::logic_error("ConsistentBroadcast::send: not the sender");
  if (sent_) throw std::logic_error("ConsistentBroadcast::send: already sent");
  sent_ = true;
  sent_payload_ = Bytes(payload.begin(), payload.end());
  Writer w;
  w.u8(static_cast<std::uint8_t>(Tag::kSend));
  w.raw(payload);
  send_all(w.data());
}

void ConsistentBroadcast::on_message(PartyId from, BytesView payload) {
  try {
    Reader r(payload);
    const Tag tag = static_cast<Tag>(r.u8());

    switch (tag) {
      case Tag::kSend: {
        if (from != sender_ || echoed_) return;
        echoed_ = true;
        const Bytes body = r.raw(r.remaining());
        const Bytes statement = signed_statement(pid(), body);
        const Bytes share = env_.keys().sig_broadcast->sign_share(statement);
        Writer w;
        w.u8(static_cast<std::uint8_t>(Tag::kEchoShare));
        w.bytes(share);
        send_to(sender_, w.data());
        return;
      }
      case Tag::kEchoShare: {
        if (env_.self() != sender_ || !sent_payload_ || final_sent_) return;
        Bytes share = r.bytes();
        r.expect_end();
        // Optimistic path: no per-share verification here.  The collector
        // hands a quorum to combine_checked, which verifies the one
        // combined signature and only falls back to share-by-share checks
        // (blacklisting the culprits) if a Byzantine echo slipped in.
        ensure_collector();
        echo_shares_->add(from, std::move(share));
        return;
      }
      case Tag::kFinal: {
        Bytes body = r.bytes();
        Bytes sig = r.bytes();
        r.expect_end();
        const Bytes statement = signed_statement(pid(), body);
        if (!env_.keys().sig_broadcast->verify(statement, sig)) return;
        deliver_with(std::move(body), std::move(sig));
        return;
      }
    }
  } catch (const SerdeError&) {
    // Byzantine garbage: drop.
  }
}

void ConsistentBroadcast::ensure_collector() {
  if (echo_shares_) return;
  // The attempt closure runs on a pool worker: it owns the scheme handle
  // and a copy of the statement, nothing of `this`.  The deliver closure
  // runs on the owner thread; a destroyed protocol never sees it (the
  // collector's liveness guard).
  std::shared_ptr<crypto::ThresholdSigScheme> scheme =
      env_.keys().sig_broadcast;
  echo_shares_ = std::make_unique<ShareCollector<Bytes>>(
      env_.crypto_pool(), scheme->k(),
      [scheme, statement = signed_statement(pid(), *sent_payload_),
       pool = &env_.crypto_pool()](const ShareCollector<Bytes>::Shares& shares)
          -> std::optional<Bytes> {
        // Pool pointer: a Byzantine-triggered fallback verifies the k
        // chosen shares in parallel instead of a serial loop.
        auto checked = scheme->combine_checked(statement, shares, pool);
        if (!checked.has_value()) return std::nullopt;
        return std::move(checked->sig);
      },
      [this](Bytes sig) {
        if (final_sent_) return;
        final_sent_ = true;
        Writer w;
        w.u8(static_cast<std::uint8_t>(Tag::kFinal));
        w.bytes(*sent_payload_);
        w.bytes(sig);
        send_all(w.data());
      });
}

void ConsistentBroadcast::deliver_with(Bytes payload, Bytes signature) {
  if (delivered_.has_value()) return;
  Writer w;
  w.bytes(payload);
  w.bytes(signature);
  closing_ = std::move(w).take();
  delivered_ = std::move(payload);
  if (deliver_cb_) deliver_cb_(*delivered_);
}

void ConsistentBroadcast::accept_closing(BytesView closing) {
  if (delivered_.has_value()) return;
  try {
    Reader r(closing);
    Bytes body = r.bytes();
    Bytes sig = r.bytes();
    r.expect_end();
    const Bytes statement = signed_statement(pid(), body);
    if (!env_.keys().sig_broadcast->verify(statement, sig)) return;
    deliver_with(std::move(body), std::move(sig));
  } catch (const SerdeError&) {
  }
}

std::optional<Bytes> VerifiableConsistentBroadcast::payload_from_closing(
    BytesView closing) {
  try {
    Reader r(closing);
    Bytes body = r.bytes();
    (void)r.bytes();
    r.expect_end();
    return body;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

bool VerifiableConsistentBroadcast::is_valid_closing(
    const crypto::PartyKeys& keys, const std::string& pid, BytesView closing) {
  try {
    Reader r(closing);
    const Bytes body = r.bytes();
    const Bytes sig = r.bytes();
    r.expect_end();
    return keys.sig_broadcast->verify(signed_statement(pid, body), sig);
  } catch (const SerdeError&) {
    return false;
  }
}

}  // namespace sintra::core
