#include "core/broadcast/consistent_broadcast.hpp"

#include "crypto/sha256.hpp"

namespace sintra::core {

ConsistentBroadcast::ConsistentBroadcast(Environment& env,
                                         Dispatcher& dispatcher,
                                         const std::string& basepid,
                                         PartyId sender)
    : Protocol(env, dispatcher, basepid + "." + std::to_string(sender)),
      sender_(sender) {
  activate();
}

Bytes ConsistentBroadcast::signed_statement(const std::string& pid,
                                            BytesView payload) {
  Writer w;
  w.str("cb-echo");
  w.str(pid);
  w.bytes(crypto::Sha256::hash(payload));
  return std::move(w).take();
}

void ConsistentBroadcast::send(BytesView payload) {
  if (env_.self() != sender_)
    throw std::logic_error("ConsistentBroadcast::send: not the sender");
  if (sent_) throw std::logic_error("ConsistentBroadcast::send: already sent");
  sent_ = true;
  sent_payload_ = Bytes(payload.begin(), payload.end());
  Writer w;
  w.u8(static_cast<std::uint8_t>(Tag::kSend));
  w.raw(payload);
  send_all(w.data());
}

void ConsistentBroadcast::on_message(PartyId from, BytesView payload) {
  try {
    Reader r(payload);
    const Tag tag = static_cast<Tag>(r.u8());

    switch (tag) {
      case Tag::kSend: {
        if (from != sender_ || echoed_) return;
        echoed_ = true;
        const Bytes body = r.raw(r.remaining());
        const Bytes statement = signed_statement(pid(), body);
        const Bytes share = env_.keys().sig_broadcast->sign_share(statement);
        Writer w;
        w.u8(static_cast<std::uint8_t>(Tag::kEchoShare));
        w.bytes(share);
        send_to(sender_, w.data());
        return;
      }
      case Tag::kEchoShare: {
        if (env_.self() != sender_ || !sent_payload_ || final_sent_) return;
        if (!share_senders_.insert(from).second) return;
        const Bytes share = r.bytes();
        r.expect_end();
        const Bytes statement = signed_statement(pid(), *sent_payload_);
        const auto& scheme = *env_.keys().sig_broadcast;
        if (!scheme.verify_share(statement, from, share)) return;
        shares_.emplace_back(from, share);
        if (static_cast<int>(shares_.size()) >= scheme.k()) {
          final_sent_ = true;
          const Bytes sig = scheme.combine(statement, shares_);
          Writer w;
          w.u8(static_cast<std::uint8_t>(Tag::kFinal));
          w.bytes(*sent_payload_);
          w.bytes(sig);
          send_all(w.data());
        }
        return;
      }
      case Tag::kFinal: {
        Bytes body = r.bytes();
        Bytes sig = r.bytes();
        r.expect_end();
        const Bytes statement = signed_statement(pid(), body);
        if (!env_.keys().sig_broadcast->verify(statement, sig)) return;
        deliver_with(std::move(body), std::move(sig));
        return;
      }
    }
  } catch (const SerdeError&) {
    // Byzantine garbage: drop.
  }
}

void ConsistentBroadcast::deliver_with(Bytes payload, Bytes signature) {
  if (delivered_.has_value()) return;
  Writer w;
  w.bytes(payload);
  w.bytes(signature);
  closing_ = std::move(w).take();
  delivered_ = std::move(payload);
  if (deliver_cb_) deliver_cb_(*delivered_);
}

void ConsistentBroadcast::accept_closing(BytesView closing) {
  if (delivered_.has_value()) return;
  try {
    Reader r(closing);
    Bytes body = r.bytes();
    Bytes sig = r.bytes();
    r.expect_end();
    const Bytes statement = signed_statement(pid(), body);
    if (!env_.keys().sig_broadcast->verify(statement, sig)) return;
    deliver_with(std::move(body), std::move(sig));
  } catch (const SerdeError&) {
  }
}

std::optional<Bytes> VerifiableConsistentBroadcast::payload_from_closing(
    BytesView closing) {
  try {
    Reader r(closing);
    Bytes body = r.bytes();
    (void)r.bytes();
    r.expect_end();
    return body;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

bool VerifiableConsistentBroadcast::is_valid_closing(
    const crypto::PartyKeys& keys, const std::string& pid, BytesView closing) {
  try {
    Reader r(closing);
    const Bytes body = r.bytes();
    const Bytes sig = r.bytes();
    r.expect_end();
    return keys.sig_broadcast->verify(signed_statement(pid, body), sig);
  } catch (const SerdeError&) {
    return false;
  }
}

}  // namespace sintra::core
