// The abstract Broadcast interface of the paper's class hierarchy
// (Figure 2 / §3.2): getSender, send, receive (here: delivered),
// canReceive, abort.  Both broadcast primitives implement it, so code
// can choose the agreement/cost trade-off of §2.2 (reliable: O(n^2)
// messages, no public-key crypto; consistent: O(n) messages, threshold
// signatures) behind one type.
#pragma once

#include <optional>

#include "util/bytes.hpp"

namespace sintra::core {

class BroadcastBase {
 public:
  virtual ~BroadcastBase() = default;

  /// The distinguished sender's index (§2.2: "the identity of the sender
  /// is an input parameter to the protocol").
  [[nodiscard]] virtual int broadcast_sender() const = 0;

  /// Starts the broadcast; sender only, exactly once.
  virtual void send_broadcast(BytesView payload) = 0;

  /// The delivered payload, once accepted (the blocking receive() of the
  /// Java API is provided by the facade layer).
  [[nodiscard]] virtual const std::optional<Bytes>& broadcast_delivered()
      const = 0;

  [[nodiscard]] bool can_receive_broadcast() const {
    return broadcast_delivered().has_value();
  }

  /// Terminates the local instance immediately (§3.2 abort()).
  virtual void abort_broadcast() = 0;
};

}  // namespace sintra::core
