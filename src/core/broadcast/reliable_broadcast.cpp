#include "core/broadcast/reliable_broadcast.hpp"

#include "crypto/sha256.hpp"

namespace sintra::core {

namespace {
Bytes digest_of(BytesView payload) {
  return crypto::Sha256::hash(payload);
}
}  // namespace

ReliableBroadcast::ReliableBroadcast(Environment& env, Dispatcher& dispatcher,
                                     const std::string& basepid,
                                     PartyId sender)
    : Protocol(env, dispatcher, basepid + "." + std::to_string(sender)),
      sender_(sender) {
  activate();
}

void ReliableBroadcast::send(BytesView payload) {
  if (env_.self() != sender_)
    throw std::logic_error("ReliableBroadcast::send: not the sender");
  if (sent_) throw std::logic_error("ReliableBroadcast::send: already sent");
  sent_ = true;
  Writer w;
  w.u8(static_cast<std::uint8_t>(Tag::kSend));
  w.raw(payload);
  send_all(w.data());
}

void ReliableBroadcast::on_message(PartyId from, BytesView payload) {
  try {
    Reader r(payload);
    const Tag tag = static_cast<Tag>(r.u8());
    Bytes body = r.raw(r.remaining());

    switch (tag) {
      case Tag::kSend: {
        if (from != sender_ || echoed_) return;
        echoed_ = true;
        Writer w;
        w.u8(static_cast<std::uint8_t>(Tag::kEcho));
        w.raw(body);
        send_all(w.data());
        return;
      }
      case Tag::kEcho: {
        const Bytes d = digest_of(body);
        auto& voters = echoes_[d];
        if (!voters.insert(from).second) return;  // duplicate echo
        payloads_.try_emplace(d, std::move(body));
        const int quorum = (env_.n() + env_.t() + 2) / 2;  // ceil((n+t+1)/2)
        if (static_cast<int>(voters.size()) >= quorum) {
          maybe_send_ready(d, payloads_[d]);
        }
        return;
      }
      case Tag::kReady: {
        const Bytes d = digest_of(body);
        auto& voters = readies_[d];
        if (!voters.insert(from).second) return;
        payloads_.try_emplace(d, std::move(body));
        if (static_cast<int>(voters.size()) >= env_.t() + 1) {
          maybe_send_ready(d, payloads_[d]);
        }
        if (static_cast<int>(voters.size()) >= 2 * env_.t() + 1) {
          maybe_deliver(d, payloads_[d]);
        }
        return;
      }
    }
  } catch (const SerdeError&) {
    // Malformed message from a Byzantine peer: drop.
  }
}

void ReliableBroadcast::maybe_send_ready(const Bytes& digest,
                                         const Bytes& payload) {
  (void)digest;
  if (readied_) return;
  readied_ = true;
  Writer w;
  w.u8(static_cast<std::uint8_t>(Tag::kReady));
  w.raw(payload);
  send_all(w.data());
}

void ReliableBroadcast::maybe_deliver(const Bytes& digest,
                                      const Bytes& payload) {
  (void)digest;
  if (delivered_.has_value()) return;
  delivered_ = payload;
  if (deliver_cb_) deliver_cb_(*delivered_);
}

}  // namespace sintra::core
