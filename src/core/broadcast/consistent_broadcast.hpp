// Consistent broadcast — Reiter's "echo broadcast" with threshold
// signatures (paper §2.2), plus the *verifiable* extension with closing
// messages (paper §3.2).
//
// Consistency only: honest parties that deliver, deliver the same payload,
// but some may deliver nothing.  Costs O(n) messages (vs O(n^2) for
// reliable broadcast) in exchange for threshold-signature computation:
//   1. sender sends payload to all;
//   2. each party signs a share binding (pid, payload) and echoes it back
//      to the sender — at most once, which is what prevents the sender
//      from obtaining signatures on two different payloads;
//   3. given a quorum of ceil((n+t+1)/2) shares, the sender assembles the
//      threshold signature and sends (payload, signature) to all;
//   4. a party delivers on receiving a valid (payload, signature).
//
// The (payload, signature) pair is the instance's *closing message*: any
// party can hand it to any other to make it deliver and terminate — used
// by multi-valued agreement to prove that a candidate made a proposal.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/broadcast/broadcast_base.hpp"
#include "core/protocol.hpp"
#include "core/share_collector.hpp"

namespace sintra::core {

class ConsistentBroadcast : public Protocol, public BroadcastBase {
 public:
  ConsistentBroadcast(Environment& env, Dispatcher& dispatcher,
                      const std::string& basepid, PartyId sender);

  [[nodiscard]] PartyId sender() const { return sender_; }

  /// Starts the broadcast; sender only, exactly once.
  void send(BytesView payload);

  [[nodiscard]] const std::optional<Bytes>& delivered() const {
    return delivered_;
  }

  void set_deliver_callback(std::function<void(const Bytes&)> cb) {
    deliver_cb_ = std::move(cb);
    // Replay during construction can deliver before the owner wires the
    // callback (see BinaryAgreementEngine::set_decide_callback).
    if (delivered_.has_value() && deliver_cb_) deliver_cb_(*delivered_);
  }

  // --- BroadcastBase (the paper's Figure 2 Broadcast interface) ---
  [[nodiscard]] int broadcast_sender() const override { return sender_; }
  void send_broadcast(BytesView payload) override { send(payload); }
  [[nodiscard]] const std::optional<Bytes>& broadcast_delivered()
      const override {
    return delivered();
  }
  void abort_broadcast() override { abort(); }

 protected:
  void on_message(PartyId from, BytesView payload) override;

  /// Closing message of a delivered instance (payload + threshold sig).
  [[nodiscard]] const std::optional<Bytes>& closing_raw() const {
    return closing_;
  }
  void accept_closing(BytesView closing);

  /// The string actually signed: binds pid and payload digest.
  static Bytes signed_statement(const std::string& pid, BytesView payload);

 private:
  enum class Tag : std::uint8_t { kSend = 0, kEchoShare = 1, kFinal = 2 };

  void deliver_with(Bytes payload, Bytes signature);

  /// Lazily built by the sender on the first echo share: accumulates
  /// shares unverified and hands quorums to the optimistic
  /// combine_checked path (possibly on the crypto worker pool).
  void ensure_collector();

  PartyId sender_;
  bool sent_ = false;
  bool echoed_ = false;
  std::optional<Bytes> sent_payload_;  // sender side
  std::unique_ptr<ShareCollector<Bytes>> echo_shares_;  // sender side
  bool final_sent_ = false;
  std::optional<Bytes> delivered_;
  std::optional<Bytes> closing_;
  std::function<void(const Bytes&)> deliver_cb_;
};

/// Verifiable consistent broadcast (paper §3.2): exposes the closing
/// message so other protocols can transfer deliverability.
class VerifiableConsistentBroadcast final : public ConsistentBroadcast {
 public:
  using ConsistentBroadcast::ConsistentBroadcast;

  /// Closing message of an already-delivered instance; nullopt before.
  [[nodiscard]] const std::optional<Bytes>& get_closing() const {
    return closing_raw();
  }

  /// Delivers from a closing message obtained out-of-band; invalid
  /// closings are ignored.
  void deliver_closing(BytesView closing) { accept_closing(closing); }

  /// Extracts the payload carried by a closing message (no verification).
  static std::optional<Bytes> payload_from_closing(BytesView closing);

  /// Verifies that `closing` closes instance `pid` under the group's
  /// broadcast threshold-signature key.
  static bool is_valid_closing(const crypto::PartyKeys& keys,
                               const std::string& pid, BytesView closing);
};

}  // namespace sintra::core
