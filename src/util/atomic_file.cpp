#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace sintra::util {

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

}  // namespace

bool atomic_write_file(const std::string& path, BytesView content,
                       std::string* error) {
  // Per-pid temp name: concurrent writers of the same target cannot
  // clobber each other's partial data, and the final rename still
  // serializes to one complete winner.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, "open " + tmp);
    return false;
  }
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, "write " + tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  // The data must be durable *before* the rename publishes it, or a
  // power cut could leave a fully-renamed file with missing bytes.
  if (::fsync(fd) != 0) {
    set_error(error, "fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, "close " + tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return false;
  }
  // Persist the directory entry as well (the rename itself).
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best effort; some filesystems refuse directory fsync
    ::close(dfd);
  }
  return true;
}

bool atomic_write_file(const std::string& path, std::string_view content,
                       std::string* error) {
  return atomic_write_file(
      path,
      BytesView(reinterpret_cast<const std::uint8_t*>(content.data()),
                content.size()),
      error);
}

}  // namespace sintra::util
