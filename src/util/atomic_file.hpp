// Atomic whole-file replacement: write to a temporary sibling, fsync it,
// rename() over the target, fsync the directory.
//
// rename() within one filesystem is atomic, so a reader (or a process
// restarted after SIGKILL) only ever observes either the old complete
// file or the new complete file — never a torn prefix.  Every snapshot
// the stack persists (metrics snapshots, .done completion markers, the
// recovery layer's checkpoint certificates) goes through this helper so
// that a crash mid-write cannot leave output that *looks* finished but
// is not.
#pragma once

#include <string>

#include "util/bytes.hpp"

namespace sintra::util {

/// Atomically replaces `path` with `content`.  Returns false (and fills
/// `error` when given) on any I/O failure; the target is then untouched
/// except possibly for a leftover `<path>.tmp.<pid>` sibling.
bool atomic_write_file(const std::string& path, BytesView content,
                       std::string* error = nullptr);

/// Convenience overload for text content.
bool atomic_write_file(const std::string& path, std::string_view content,
                       std::string* error = nullptr);

}  // namespace sintra::util
