// Byte-string utilities shared by every SINTRA subsystem.
//
// All protocol payloads, cryptographic values and wire messages are carried
// as `Bytes` (a std::vector<uint8_t>); `BytesView` (std::span) is used for
// non-owning parameters per the Core Guidelines (F.24).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sintra {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Builds a Bytes from a UTF-8/ASCII string (no terminator included).
Bytes to_bytes(std::string_view s);

/// Interprets a byte string as text (for human-readable payloads in tests
/// and examples; arbitrary bytes are copied verbatim).
std::string to_string(BytesView b);

/// Concatenates any number of byte strings.
Bytes concat(std::initializer_list<BytesView> parts);

/// Constant-time equality for secret-dependent comparisons (MAC tags,
/// signature checks).  Returns false on length mismatch without leaking
/// the position of the first difference.
bool ct_equal(BytesView a, BytesView b) noexcept;

}  // namespace sintra
