// CRC-32 (IEEE 802.3 polynomial, reflected) for storage framing.
//
// The durable replica log (recovery/replica_log.hpp) frames every record
// with a CRC so a crash mid-append — or a flipped bit on disk — is
// detected at load time instead of being replayed as protocol state.
// This is crash-consistency framing, not cryptography: integrity against
// an *adversary* with disk access is out of scope (the state directory is
// trusted exactly like the dealer key file next to it).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace sintra::util {

/// One-shot CRC-32 of `data` (initial value 0xFFFFFFFF, final xor-out).
std::uint32_t crc32(BytesView data);

/// Streaming form: feed `crc32_update` with the running value, starting
/// from crc32_init(), and finish with crc32_final().
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, BytesView data);
std::uint32_t crc32_final(std::uint32_t state);

}  // namespace sintra::util
