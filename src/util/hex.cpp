#include "util/hex.hpp"

#include <stdexcept>

namespace sintra {

namespace {
constexpr char kDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("hex_decode: invalid hex character");
}
}  // namespace

std::string hex_encode(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Bytes hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0)
    throw std::invalid_argument("hex_decode: odd-length input");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) |
                                            nibble(hex[i + 1])));
  }
  return out;
}

}  // namespace sintra
