#include "util/crc32.hpp"

#include <array>

namespace sintra::util {

namespace {

// Table for the reflected IEEE polynomial 0xEDB88320, built once.
const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = [] {
    std::array<std::uint32_t, 256> out{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      out[i] = c;
    }
    return out;
  }();
  return t;
}

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, BytesView data) {
  const auto& t = table();
  for (const std::uint8_t byte : data) {
    state = t[(state ^ byte) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(BytesView data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace sintra::util
