#include "util/serde.hpp"

namespace sintra {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void Writer::bytes(BytesView b) {
  if (b.size() > 0xffffffffu) throw SerdeError("Writer::bytes: too large");
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void Writer::str(std::string_view s) {
  bytes(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Writer::raw(BytesView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

void Reader::need(std::size_t n) const {
  if (data_.size() - pos_ < n) throw SerdeError("Reader: truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  std::uint64_t hi = u32();
  std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

Bytes Reader::bytes() {
  std::uint32_t n = u32();
  return raw(n);
}

std::string Reader::str() {
  Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

BytesView Reader::raw_view(std::size_t n) {
  need(n);
  BytesView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void Reader::expect_end() const {
  if (!empty()) throw SerdeError("Reader: trailing bytes");
}

}  // namespace sintra
