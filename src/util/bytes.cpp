#include "util/bytes.hpp"

namespace sintra {

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(BytesView b) { return std::string(b.begin(), b.end()); }

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

bool ct_equal(BytesView a, BytesView b) noexcept {
  if (a.size() != b.size()) return false;
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace sintra
