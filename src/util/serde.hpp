// Binary serialization used for every SINTRA wire message.
//
// The format is deliberately simple and deterministic: fixed-width
// big-endian integers and length-prefixed byte strings.  Determinism
// matters because messages are fed to MACs, hashes and signatures; the
// same logical message must always serialize to the same bytes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace sintra {

/// Thrown by Reader when the input is truncated or malformed.  Protocol
/// code treats this as evidence of a corrupted/Byzantine sender and drops
/// the message.
class SerdeError : public std::runtime_error {
 public:
  explicit SerdeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends values to a growing byte buffer.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Length-prefixed (u32) byte string.
  void bytes(BytesView b);
  /// Length-prefixed (u32) string.
  void str(std::string_view s);
  /// Raw bytes with no length prefix (caller knows the framing).
  void raw(BytesView b);

  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Consumes values from a byte buffer; throws SerdeError past the end.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes bytes();
  std::string str();
  /// Exactly n raw bytes.
  Bytes raw(std::size_t n);
  /// Exactly n raw bytes as a non-owning view into the input (valid only
  /// while the underlying buffer lives; hot paths use this to avoid a
  /// copy per routed frame).
  BytesView raw_view(std::size_t n);

  [[nodiscard]] bool empty() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws unless the whole input has been consumed (rejects messages
  /// with trailing garbage).
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace sintra
