// Hex encoding/decoding, used for test vectors, logging and the dealer's
// configuration files.
#pragma once

#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace sintra {

/// Lower-case hex encoding of a byte string.
std::string hex_encode(BytesView data);

/// Decodes a hex string (case-insensitive).  Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes hex_decode(std::string_view hex);

}  // namespace sintra
