#include "util/rng.hpp"

namespace sintra {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void Rng::fill(Bytes& out) {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t v = next_u64();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

}  // namespace sintra
