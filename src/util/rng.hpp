// Deterministic random source.
//
// SINTRA's protocols are randomized, but every experiment in this
// reproduction must be replayable, so all randomness flows through a
// seedable generator.  We use xoshiro256** — tiny, fast, and good enough
// for simulation schedules; cryptographic key generation additionally
// mixes through SHA-256 in the crypto layer (see crypto/dealer).
#pragma once

#include <cstdint>
#include <limits>

#include "util/bytes.hpp"

namespace sintra {

class Rng {
 public:
  /// Seeds deterministically via splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x5157a11a2002dULL);

  std::uint64_t next_u64();

  /// Uniform in [0, bound).  bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Fills `out` with random bytes.
  void fill(Bytes& out);
  Bytes bytes(std::size_t n);

  bool coin() { return (next_u64() & 1) != 0; }

  // UniformRandomBitGenerator interface so <algorithm>/<random> accept Rng.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace sintra
