// Threaded in-process transport: one real thread per party, lock-free
// protocol code (each party's protocol objects are touched only by its
// own thread), HMAC-authenticated queues between parties.
//
// This is the deployment-shaped counterpart of the discrete-event
// simulator: the examples run on it with real concurrency and wall-clock
// time.  (The paper's prototype used TCP sockets; in-process queues give
// the same reliable FIFO authenticated-link abstraction — see DESIGN.md.)
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <variant>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/env.hpp"

namespace sintra::facade {

class LocalGroup;

/// Environment implementation for one party, backed by a worker thread.
class LocalNode final : public core::Environment {
 public:
  LocalNode(LocalGroup& group, int id, crypto::PartyKeys keys);

  [[nodiscard]] core::PartyId self() const override { return id_; }
  [[nodiscard]] int n() const override { return keys_.n; }
  [[nodiscard]] int t() const override { return keys_.t; }
  void send(core::PartyId to, Bytes wire) override;
  void send_all(Bytes wire) override;
  [[nodiscard]] double now_ms() const override;
  [[nodiscard]] Rng& rng() override { return rng_; }
  [[nodiscard]] const crypto::PartyKeys& keys() const override {
    return keys_;
  }

  [[nodiscard]] core::Dispatcher& dispatcher() { return dispatcher_; }

 private:
  friend class LocalGroup;

  struct Incoming {
    int from;
    Bytes wire;
  };
  using Task = std::variant<Incoming, std::function<void()>>;

  void run_loop();
  void enqueue(Task task);

  LocalGroup& group_;
  int id_;
  crypto::PartyKeys keys_;
  core::Dispatcher dispatcher_;
  Rng rng_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::thread thread_;
};

/// A full group of parties with worker threads, built from a dealer run.
class LocalGroup {
 public:
  explicit LocalGroup(const crypto::Deal& deal);
  ~LocalGroup();

  LocalGroup(const LocalGroup&) = delete;
  LocalGroup& operator=(const LocalGroup&) = delete;

  [[nodiscard]] int n() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] LocalNode& node(int i) {
    return *nodes_.at(static_cast<std::size_t>(i));
  }

  /// Runs `fn` on party i's thread, asynchronously.
  void post(int i, std::function<void()> fn);

  /// Runs `fn` on party i's thread and waits for it to finish.
  void post_sync(int i, std::function<void()> fn);

  /// Crash-stops a party (its thread drains no further work).
  void crash(int i);

  /// Stops all threads (also done by the destructor).
  void stop();

 private:
  friend class LocalNode;

  std::vector<std::unique_ptr<LocalNode>> nodes_;
  std::vector<char> crashed_;  // not vector<bool>: written cross-thread under mutex
  std::mutex crash_mutex_;
};

}  // namespace sintra::facade
