#include "facade/local_transport.hpp"

#include <chrono>

#include "sim/network.hpp"

namespace sintra::facade {

namespace {
double steady_now_ms() {
  using namespace std::chrono;
  return duration<double, std::milli>(steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

LocalNode::LocalNode(LocalGroup& group, int id, crypto::PartyKeys keys)
    : group_(group),
      id_(id),
      keys_(std::move(keys)),
      rng_(0xfacade ^ (static_cast<std::uint64_t>(id) << 24)) {
  // Same instrumentation surface as the simulator and the UDP stack;
  // timestamps use the group's shared virtual clock.
  dispatcher_.attach_obs(id, [this] { return now_ms(); });
}

void LocalNode::send(core::PartyId to, Bytes wire) {
  if (to < 0 || to >= n()) throw std::out_of_range("LocalNode::send");
  // Authenticate exactly as on a real link.
  Bytes authed = sim::authenticate_frame(
      keys_.link_keys[static_cast<std::size_t>(to)], id_, to, wire);
  group_.node(to).enqueue(Incoming{id_, std::move(authed)});
}

void LocalNode::send_all(Bytes wire) {
  for (int j = 0; j < n(); ++j) send(j, wire);
}

double LocalNode::now_ms() const { return steady_now_ms(); }

void LocalNode::enqueue(Task task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void LocalNode::run_loop() {
  for (;;) {
    Task task{std::function<void()>{}};
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (auto* incoming = std::get_if<Incoming>(&task)) {
      Bytes frame;
      if (sim::open_frame(
              keys_.link_keys[static_cast<std::size_t>(incoming->from)],
              incoming->from, id_, incoming->wire, frame)) {
        dispatcher_.on_message(incoming->from, frame);
      }
    } else {
      auto& fn = std::get<std::function<void()>>(task);
      if (fn) fn();
    }
  }
}

LocalGroup::LocalGroup(const crypto::Deal& deal) {
  nodes_.reserve(deal.parties.size());
  crashed_.assign(deal.parties.size(), 0);
  for (std::size_t i = 0; i < deal.parties.size(); ++i) {
    nodes_.push_back(
        std::make_unique<LocalNode>(*this, static_cast<int>(i),
                                    deal.parties[i]));
  }
  for (auto& node : nodes_) {
    node->thread_ = std::thread([&n = *node] { n.run_loop(); });
  }
}

LocalGroup::~LocalGroup() { stop(); }

void LocalGroup::post(int i, std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(crash_mutex_);
    if (crashed_.at(static_cast<std::size_t>(i)) != 0) return;
  }
  node(i).enqueue(std::move(fn));
}

void LocalGroup::post_sync(int i, std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(crash_mutex_);
    if (crashed_.at(static_cast<std::size_t>(i)) != 0) {
      // The node's thread is stopped and will never touch its objects
      // again, so running on the caller's thread is race-free.  This keeps
      // teardown (e.g. BlockingChannel destructors) from deadlocking.
      fn();
      return;
    }
  }
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  post(i, [&] {
    fn();
    {
      const std::lock_guard<std::mutex> lock(m);
      done = true;
    }
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done; });
}

void LocalGroup::crash(int i) {
  {
    const std::lock_guard<std::mutex> lock(crash_mutex_);
    crashed_.at(static_cast<std::size_t>(i)) = 1;
  }
  // Stop the node's loop.  Already-queued tasks drain (so synchronous
  // posters are released) but nothing new is accepted and nothing new is
  // sent after the drain — an effective crash-stop for the group.
  LocalNode& nd = node(i);
  {
    const std::lock_guard<std::mutex> lock(nd.mutex_);
    nd.stopping_ = true;
  }
  nd.cv_.notify_all();
}

void LocalGroup::stop() {
  for (auto& node : nodes_) {
    if (!node) continue;
    {
      const std::lock_guard<std::mutex> lock(node->mutex_);
      node->stopping_ = true;
    }
    node->cv_.notify_all();
  }
  for (auto& node : nodes_) {
    if (node && node->thread_.joinable()) node->thread_.join();
  }
}

}  // namespace sintra::facade
