// BlockingChannel is a header-only template; instantiate all four channel
// facades here to catch compile errors early.
#include "facade/blocking_api.hpp"

namespace sintra::facade {

template class BlockingChannel<core::AtomicChannel>;
template class BlockingChannel<core::SecureAtomicChannel>;
template class BlockingChannel<core::ReliableChannel>;
template class BlockingChannel<core::ConsistentChannel>;

}  // namespace sintra::facade
