// Blocking channel API mirroring the paper's Java interface (§3.4):
// send / receive / canReceive / close / closeWait / isClosed.
//
// Protocol objects live on their party's transport thread; this wrapper
// marshals calls onto that thread and blocks the caller on condition
// variables fed by the protocol's delivery callbacks.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "core/channel/atomic_channel.hpp"
#include "core/channel/broadcast_channel.hpp"
#include "core/channel/secure_atomic_channel.hpp"
#include "facade/local_transport.hpp"

namespace sintra::facade {

namespace detail {

/// Construction/adaptation glue per channel type.
template <typename C>
struct ChannelTraits;

template <>
struct ChannelTraits<core::AtomicChannel> {
  static std::unique_ptr<core::AtomicChannel> make(
      core::Environment& env, core::Dispatcher& disp, const std::string& pid) {
    return std::make_unique<core::AtomicChannel>(env, disp, pid);
  }
  template <typename F>
  static void hook(core::AtomicChannel& ch, F deliver) {
    ch.set_deliver_callback(
        [deliver](const Bytes& payload, core::PartyId) { deliver(payload); });
  }
};

template <>
struct ChannelTraits<core::SecureAtomicChannel> {
  static std::unique_ptr<core::SecureAtomicChannel> make(
      core::Environment& env, core::Dispatcher& disp, const std::string& pid) {
    return std::make_unique<core::SecureAtomicChannel>(env, disp, pid);
  }
  template <typename F>
  static void hook(core::SecureAtomicChannel& ch, F deliver) {
    ch.set_deliver_callback(deliver);
  }
};

template <>
struct ChannelTraits<core::ReliableChannel> {
  static std::unique_ptr<core::ReliableChannel> make(
      core::Environment& env, core::Dispatcher& disp, const std::string& pid) {
    return std::make_unique<core::ReliableChannel>(env, disp, pid);
  }
  template <typename F>
  static void hook(core::ReliableChannel& ch, F deliver) {
    ch.set_deliver_callback(
        [deliver](const Bytes& payload, core::PartyId) { deliver(payload); });
  }
};

template <>
struct ChannelTraits<core::ConsistentChannel> {
  static std::unique_ptr<core::ConsistentChannel> make(
      core::Environment& env, core::Dispatcher& disp, const std::string& pid) {
    return std::make_unique<core::ConsistentChannel>(env, disp, pid);
  }
  template <typename F>
  static void hook(core::ConsistentChannel& ch, F deliver) {
    ch.set_deliver_callback(
        [deliver](const Bytes& payload, core::PartyId) { deliver(payload); });
  }
};

}  // namespace detail

/// Blocking facade over any SINTRA channel type, bound to one party of a
/// LocalGroup.
template <typename C>
class BlockingChannel {
 public:
  BlockingChannel(LocalGroup& group, int party, const std::string& pid)
      : group_(group), party_(party) {
    group_.post_sync(party, [&] {
      channel_ = detail::ChannelTraits<C>::make(
          group_.node(party_), group_.node(party_).dispatcher(), pid);
      detail::ChannelTraits<C>::hook(*channel_, [this](const Bytes& payload) {
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          inbox_.push_back(payload);
        }
        cv_.notify_all();
      });
      channel_->set_closed_callback([this] {
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          closed_flag_ = true;
        }
        cv_.notify_all();
      });
    });
  }

  ~BlockingChannel() {
    // Destroy the protocol object on its owning thread.
    group_.post_sync(party_, [&] { channel_.reset(); });
  }

  /// Queues a payload (asynchronous, like the Java API's non-blocking
  /// send when buffers are free).
  void send(Bytes payload) {
    group_.post(party_, [this, payload = std::move(payload)] {
      channel_->send(payload);
    });
  }

  /// Blocks until the next payload is delivered.
  Bytes receive() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !inbox_.empty(); });
    Bytes out = std::move(inbox_.front());
    inbox_.pop_front();
    return out;
  }

  /// Non-blocking probe (the Java API's canReceive).
  [[nodiscard]] bool can_receive() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return !inbox_.empty();
  }

  /// Bounded-wait receive for robust example code.
  std::optional<Bytes> receive_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout, [&] { return !inbox_.empty(); })) {
      return std::nullopt;
    }
    Bytes out = std::move(inbox_.front());
    inbox_.pop_front();
    return out;
  }

  void close() {
    group_.post(party_, [this] { channel_->close(); });
  }

  [[nodiscard]] bool is_closed() {
    bool closed = false;
    group_.post_sync(party_, [&] { closed = channel_->is_closed(); });
    return closed;
  }

  /// Blocks until the channel has terminated (the Java API's closeWait
  /// when preceded by close()).  Woken by the channel's closed callback —
  /// no polling.
  void wait_done() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_flag_; });
  }

  void close_wait() {
    close();
    wait_done();
  }

  /// Direct access *on the owning thread only* — for example code that
  /// needs channel-specific calls (e.g. send_ciphertext).
  template <typename F>
  void with(F fn) {
    group_.post_sync(party_, [&] { fn(*channel_); });
  }

 private:
  LocalGroup& group_;
  int party_;
  std::unique_ptr<C> channel_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Bytes> inbox_;
  bool closed_flag_ = false;
};

using BlockingAtomicChannel = BlockingChannel<core::AtomicChannel>;
using BlockingSecureAtomicChannel = BlockingChannel<core::SecureAtomicChannel>;
using BlockingReliableChannel = BlockingChannel<core::ReliableChannel>;
using BlockingConsistentChannel = BlockingChannel<core::ConsistentChannel>;

}  // namespace sintra::facade
