// Blocking facades for the broadcast and agreement primitives, mirroring
// the paper's Java API (§3.2 Broadcast: send/receive/canReceive;
// §3.3 Agreement: propose/negotiate/decide/canDecide).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>

#include "core/agreement/array_agreement.hpp"
#include "core/agreement/binary_agreement.hpp"
#include "core/broadcast/consistent_broadcast.hpp"
#include "core/broadcast/reliable_broadcast.hpp"
#include "facade/local_transport.hpp"

namespace sintra::facade {

/// Blocking facade over ReliableBroadcast / ConsistentBroadcast /
/// VerifiableConsistentBroadcast.
template <typename B>
class BlockingBroadcast {
 public:
  BlockingBroadcast(LocalGroup& group, int party, const std::string& basepid,
                    int sender)
      : group_(group), party_(party) {
    group_.post_sync(party, [&] {
      protocol_ = std::make_unique<B>(group_.node(party_),
                                      group_.node(party_).dispatcher(),
                                      basepid, sender);
      protocol_->set_deliver_callback([this](const Bytes& payload) {
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          delivered_ = payload;
        }
        cv_.notify_all();
      });
    });
  }

  ~BlockingBroadcast() {
    group_.post_sync(party_, [&] { protocol_.reset(); });
  }

  /// Non-blocking send; sender only, exactly once (§3.2).
  void send(Bytes payload) {
    group_.post(party_, [this, payload = std::move(payload)] {
      protocol_->send(payload);
    });
  }

  /// Blocks until the payload is delivered; returns at most once
  /// meaningfully (subsequent calls return the same payload).
  Bytes receive() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return delivered_.has_value(); });
    return *delivered_;
  }

  std::optional<Bytes> receive_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout, [&] { return delivered_.has_value(); }))
      return std::nullopt;
    return *delivered_;
  }

  [[nodiscard]] bool can_receive() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return delivered_.has_value();
  }

 private:
  LocalGroup& group_;
  int party_;
  std::unique_ptr<B> protocol_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<Bytes> delivered_;
};

using BlockingReliableBroadcast = BlockingBroadcast<core::ReliableBroadcast>;
using BlockingConsistentBroadcast =
    BlockingBroadcast<core::ConsistentBroadcast>;

/// Blocking facade over plain binary agreement (§3.3).
class BlockingBinaryAgreement {
 public:
  BlockingBinaryAgreement(LocalGroup& group, int party,
                          const std::string& pid)
      : group_(group), party_(party) {
    group_.post_sync(party, [&] {
      protocol_ = std::make_unique<core::BinaryAgreement>(
          group_.node(party_), group_.node(party_).dispatcher(), pid);
      protocol_->set_decide_callback([this](bool value) {
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          decided_ = value;
        }
        cv_.notify_all();
      });
    });
  }

  ~BlockingBinaryAgreement() {
    group_.post_sync(party_, [&] { protocol_.reset(); });
  }

  void propose(bool value) {
    group_.post(party_, [this, value] { protocol_->propose(value); });
  }

  /// Blocks until the protocol decides.
  bool decide() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return decided_.has_value(); });
    return *decided_;
  }

  /// propose() then decide() — the Java API's negotiate (§3.3).
  bool negotiate(bool value) {
    propose(value);
    return decide();
  }

  [[nodiscard]] bool can_decide() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return decided_.has_value();
  }

 private:
  LocalGroup& group_;
  int party_;
  std::unique_ptr<core::BinaryAgreement> protocol_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<bool> decided_;
};

/// Blocking facade over multi-valued ("array") agreement (§3.3).
class BlockingArrayAgreement {
 public:
  BlockingArrayAgreement(LocalGroup& group, int party, const std::string& pid,
                         core::ArrayValidator validator)
      : group_(group), party_(party) {
    group_.post_sync(party, [&] {
      protocol_ = std::make_unique<core::ArrayAgreement>(
          group_.node(party_), group_.node(party_).dispatcher(), pid,
          std::move(validator));
      protocol_->set_decide_callback([this](const Bytes& value) {
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          decided_ = value;
        }
        cv_.notify_all();
      });
    });
  }

  ~BlockingArrayAgreement() {
    group_.post_sync(party_, [&] { protocol_.reset(); });
  }

  void propose(Bytes value) {
    group_.post(party_, [this, value = std::move(value)] {
      protocol_->propose(value);
    });
  }

  Bytes decide() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return decided_.has_value(); });
    return *decided_;
  }

  Bytes negotiate(Bytes value) {
    propose(std::move(value));
    return decide();
  }

  [[nodiscard]] bool can_decide() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return decided_.has_value();
  }

 private:
  LocalGroup& group_;
  int party_;
  std::unique_ptr<core::ArrayAgreement> protocol_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<Bytes> decided_;
};

}  // namespace sintra::facade
