#include "client/gateway.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"

namespace sintra::client {

namespace {
Bytes ok_result(std::uint64_t global_seq) {
  return to_bytes("ok:" + std::to_string(global_seq));
}
}  // namespace

ClientGateway::ClientGateway(Options opts, ClockFn clock)
    : opts_(opts),
      clock_(std::move(clock)),
      admitted_(obs::registry().counter(
          "client.admitted", obs::party_labels(static_cast<int>(opts.replica)))),
      shed_(obs::registry().counter(
          "client.shed", obs::party_labels(static_cast<int>(opts.replica)))),
      retry_later_(obs::registry().counter(
          "client.retry_later",
          obs::party_labels(static_cast<int>(opts.replica)))),
      dedup_hits_(obs::registry().counter(
          "client.dedup_hits",
          obs::party_labels(static_cast<int>(opts.replica)))),
      rejected_auth_(obs::registry().counter(
          "client.rejected_auth",
          obs::party_labels(static_cast<int>(opts.replica)))),
      executed_(obs::registry().counter(
          "client.executed", obs::party_labels(static_cast<int>(opts.replica)))),
      replies_sent_(obs::registry().counter(
          "client.replies_sent",
          obs::party_labels(static_cast<int>(opts.replica)))),
      dup_deliveries_(obs::registry().counter(
          "client.dup_deliveries",
          obs::party_labels(static_cast<int>(opts.replica)))),
      pending_depth_(obs::registry().gauge(
          "client.pending_depth",
          obs::party_labels(static_cast<int>(opts.replica)))) {
  global_bucket_.tokens = opts_.global_burst;
  global_bucket_.last_ms = clock_ ? clock_() : 0.0;
}

bool ClientGateway::TokenBucket::take(double now_ms, double rate_per_sec,
                                      double burst) {
  tokens = std::min(burst, tokens + (now_ms - last_ms) * rate_per_sec / 1000.0);
  last_ms = now_ms;
  if (tokens < 1.0) return false;
  tokens -= 1.0;
  return true;
}

ClientGateway::ClientState& ClientGateway::state(std::uint32_t client_id) {
  auto [it, inserted] = clients_.try_emplace(client_id);
  if (inserted) {
    it->second.bucket.tokens = opts_.burst;
    it->second.bucket.last_ms = clock_();
  }
  return it->second;
}

bool ClientGateway::already_executed(const ClientState& cs,
                                     std::uint64_t seq) const {
  return seq <= cs.floor || cs.executed_above.count(seq) != 0;
}

void ClientGateway::mark_executed(ClientState& cs, std::uint64_t seq) {
  if (seq == cs.floor + 1) {
    ++cs.floor;
    // Absorb any sparse entries that became contiguous.
    auto it = cs.executed_above.begin();
    while (it != cs.executed_above.end() && *it == cs.floor + 1) {
      ++cs.floor;
      it = cs.executed_above.erase(it);
    }
  } else if (seq > cs.floor) {
    cs.executed_above.insert(seq);
  }
}

void ClientGateway::set_pending_gauge() {
  pending_depth_.set(static_cast<double>(pending_total_));
}

void ClientGateway::send_reply(std::uint32_t client_id, ClientState& cs,
                               const ReplyFrame& frame) {
  if (!cs.addr_known || !reply_) return;
  Bytes dgram = encode_reply(frame, keys_.key(client_id));
  if (frame.status == Status::kOk) {
    // Cache the wire-ready bytes so a retransmitted request gets the
    // same authoritative answer without re-execution.
    cs.replies.emplace_back(frame.seq, dgram);
    while (cs.replies.size() > opts_.reply_cache) cs.replies.pop_front();
  }
  if (mangle_) dgram = mangle_(std::move(dgram));
  reply_(cs.addr, std::move(dgram));
  replies_sent_.inc();
}

void ClientGateway::reject(std::uint32_t client_id, ClientState& cs,
                           std::uint64_t seq, Status status) {
  ReplyFrame f;
  f.client_id = client_id;
  f.seq = seq;
  f.replica = opts_.replica;
  f.status = status;
  if (status == Status::kRetryLater) f.retry_ms = opts_.retry_hint_ms;
  send_reply(client_id, cs, f);
}

void ClientGateway::on_request_datagram(BytesView datagram,
                                        const Address& from) {
  const auto id = peek_client_id(datagram);
  if (!id || peek_type(datagram) != FrameType::kRequest ||
      !keys_.known(*id) || is_local_client(*id)) {
    // Unknown/forged sender: count and drop.  Deliberately no reply —
    // answering unauthenticated datagrams would make the gateway a UDP
    // amplification reflector.
    rejected_auth_.inc();
    return;
  }
  const auto req = decode_request(datagram, keys_.key(*id));
  if (!req) {
    rejected_auth_.inc();
    return;
  }
  if (opts_.max_clients > 0 && clients_.count(*id) == 0 &&
      clients_.size() >= opts_.max_clients) {
    // Table full: shed rather than evict — eviction would forget dedup
    // state, which is the one thing at-most-once cannot lose.
    shed_.inc();
    return;
  }
  // The MAC checked out: only now do we learn/update the client's
  // address (an unauthenticated datagram must not redirect replies).
  ClientState& cs = state(*id);
  cs.addr = from;
  cs.addr_known = true;

  if (already_executed(cs, req->seq)) {
    // Retransmit of something already done: replay the cached reply.
    dedup_hits_.inc();
    for (auto it = cs.replies.rbegin(); it != cs.replies.rend(); ++it) {
      if (it->first == req->seq) {
        Bytes dgram = it->second;
        if (mangle_) dgram = mangle_(std::move(dgram));
        reply_(cs.addr, std::move(dgram));
        replies_sent_.inc();
        return;
      }
    }
    // Executed but evicted from the cache — the client already got its
    // quorum or can learn from other replicas.
    reject(*id, cs, req->seq, Status::kStale);
    return;
  }
  if (cs.pending > 0) {
    // The previous request from this client is still in flight here;
    // a well-behaved client has exactly one outstanding request, so
    // this is an RTO retransmit racing the broadcast.  Dropping it is
    // safe: the delivery-time reply answers the retransmit too.
    dedup_hits_.inc();
    return;
  }

  const double now = clock_();
  if (!cs.bucket.take(now, opts_.rate_per_sec, opts_.burst) ||
      (opts_.global_rate_per_sec > 0.0 &&
       !global_bucket_.take(now, opts_.global_rate_per_sec,
                            opts_.global_burst))) {
    shed_.inc();
    obs::emit(obs::EventType::kShed, now, static_cast<int>(opts_.replica), -1,
              "client.gw", datagram.size(), static_cast<double>(*id));
    reject(*id, cs, req->seq, Status::kOverloaded);
    return;
  }
  if (pending_total_ >= opts_.max_pending) {
    retry_later_.inc();
    obs::emit(obs::EventType::kShed, now, static_cast<int>(opts_.replica), -1,
              "client.gw", datagram.size(), static_cast<double>(*id),
              "retry_later");
    reject(*id, cs, req->seq, Status::kRetryLater);
    return;
  }

  WrappedRequest w;
  w.client_id = *id;
  w.seq = req->seq;
  w.payload = req->payload;
  w.mac = request_mac(*id, req->seq, req->payload, keys_.key(*id));
  if (!submit_ || !submit_(wrap_request(w))) {
    shed_.inc();
    reject(*id, cs, req->seq, Status::kOverloaded);
    return;
  }
  admitted_.inc();
  ++cs.pending;
  ++pending_total_;
  set_pending_gauge();
}

void ClientGateway::submit_local(Bytes payload) {
  if (pending_total_ >= opts_.max_pending || !local_queue_.empty()) {
    local_queue_.push_back(std::move(payload));
    return;
  }
  WrappedRequest w;
  w.client_id = local_client_id();
  w.seq = ++local_seq_;
  w.payload = std::move(payload);
  if (!submit_ || !submit_(wrap_request(w))) {
    --local_seq_;
    return;  // channel closed; nothing more to do for local traffic
  }
  admitted_.inc();
  ClientState& cs = state(w.client_id);
  ++cs.pending;
  ++pending_total_;
  set_pending_gauge();
}

void ClientGateway::drain_local_queue() {
  while (!local_queue_.empty() && pending_total_ < opts_.max_pending) {
    Bytes payload = std::move(local_queue_.front());
    local_queue_.pop_front();
    WrappedRequest w;
    w.client_id = local_client_id();
    w.seq = ++local_seq_;
    w.payload = std::move(payload);
    if (!submit_ || !submit_(wrap_request(w))) {
      --local_seq_;
      return;
    }
    admitted_.inc();
    ClientState& cs = state(w.client_id);
    ++cs.pending;
    ++pending_total_;
  }
  set_pending_gauge();
}

std::optional<ClientGateway::Executed>
ClientGateway::on_delivered(BytesView channel_payload) {
  const auto w = unwrap_request(channel_payload);
  if (!w) {
    // Legacy raw payload (pre-client-layer sender): execute as-is under
    // the total order but outside the client identity space.
    Executed ex;
    ex.local = true;
    ex.client_id = 0;
    ex.seq = 0;
    ex.global_seq = next_global_++;
    ex.payload = Bytes(channel_payload.begin(), channel_payload.end());
    executed_.inc();
    return ex;
  }

  const bool local = is_local_client(w->client_id);
  if (!local) {
    if (!keys_.known(w->client_id)) {
      // Only a corrupted replica can propose an unknown client id —
      // honest gateways verify before proposing.  Deterministic skip.
      rejected_auth_.inc();
      return std::nullopt;
    }
    // Delivery-time re-verification of the client's own MAC: a
    // Byzantine replica cannot fabricate entries for registered
    // clients without their keys.  Deterministic across replicas
    // because the key table is shared.
    const Bytes expect = request_mac(w->client_id, w->seq, w->payload,
                                     keys_.key(w->client_id));
    if (!ct_equal(w->mac, expect)) {
      rejected_auth_.inc();
      return std::nullopt;
    }
  }

  ClientState& cs = state(w->client_id);
  const bool mine = cs.pending > 0;
  if (already_executed(cs, w->seq)) {
    // Another replica's proposal of the same request reached the order
    // first; this duplicate is skipped identically on every replica.
    dup_deliveries_.inc();
    if (mine) {
      --cs.pending;
      --pending_total_;
      set_pending_gauge();
      drain_local_queue();
    }
    return std::nullopt;
  }
  mark_executed(cs, w->seq);

  Executed ex;
  ex.local = local;
  ex.client_id = w->client_id;
  ex.seq = w->seq;
  ex.global_seq = next_global_++;
  ex.payload = w->payload;
  executed_.inc();
  if (mine) {
    --cs.pending;
    --pending_total_;
    set_pending_gauge();
  }

  if (!local) {
    // Every replica that knows the client's address replies — including
    // ones that shed the request at admission.  Shedding only refuses
    // to *propose*; once the group executed it, withholding the reply
    // would just starve the client's quorum.
    ReplyFrame f;
    f.client_id = w->client_id;
    f.seq = w->seq;
    f.replica = opts_.replica;
    f.status = Status::kOk;
    f.global_seq = ex.global_seq;
    f.result = ok_result(ex.global_seq);
    send_reply(w->client_id, cs, f);
  }
  drain_local_queue();
  return ex;
}

}  // namespace sintra::client
