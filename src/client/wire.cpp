#include "client/wire.hpp"

#include "crypto/hmac.hpp"
#include "util/serde.hpp"

namespace sintra::client {
namespace {

constexpr const char* kRequestDomain = "sintra-client-req";
constexpr const char* kReplyDomain = "sintra-client-rep";
constexpr std::uint8_t kWrapTag = 0xC6;

// Fixed advisory header shared by both frame kinds: magic, version,
// type, client_id.  Interposers peek here; parsers re-read it.
void put_header(Writer& w, FrameType type, std::uint32_t client_id) {
  w.u8(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(client_id);
}

Bytes reply_mac(const ReplyFrame& f, BytesView key) {
  Writer st;
  st.str(kReplyDomain);
  st.u32(f.client_id);
  st.u64(f.seq);
  st.u32(f.replica);
  st.u8(static_cast<std::uint8_t>(f.status));
  st.u64(f.global_seq);
  st.u32(f.retry_ms);
  st.bytes(f.result);
  return crypto::hmac(crypto::HashKind::kSha256, key, st.data());
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kOverloaded: return "overloaded";
    case Status::kRetryLater: return "retry_later";
    case Status::kStale: return "stale";
  }
  return "unknown";
}

Bytes request_mac(std::uint32_t client_id, std::uint64_t seq,
                  BytesView payload, BytesView key) {
  Writer st;
  st.str(kRequestDomain);
  st.u32(client_id);
  st.u64(seq);
  st.bytes(payload);
  return crypto::hmac(crypto::HashKind::kSha256, key, st.data());
}

Bytes encode_request(const RequestFrame& f, BytesView key) {
  Writer w;
  put_header(w, FrameType::kRequest, f.client_id);
  w.u64(f.seq);
  w.bytes(f.payload);
  w.bytes(request_mac(f.client_id, f.seq, f.payload, key));
  return std::move(w).take();
}

Bytes encode_reply(const ReplyFrame& f, BytesView key) {
  Writer w;
  put_header(w, FrameType::kReply, f.client_id);
  w.u64(f.seq);
  w.u32(f.replica);
  w.u8(static_cast<std::uint8_t>(f.status));
  w.u64(f.global_seq);
  w.u32(f.retry_ms);
  w.bytes(f.result);
  w.bytes(reply_mac(f, key));
  return std::move(w).take();
}

std::optional<RequestFrame> decode_request(BytesView datagram, BytesView key) {
  try {
    Reader r(datagram);
    if (r.u8() != kMagic || r.u8() != kVersion ||
        r.u8() != static_cast<std::uint8_t>(FrameType::kRequest)) {
      return std::nullopt;
    }
    RequestFrame f;
    f.client_id = r.u32();
    f.seq = r.u64();
    f.payload = r.bytes();
    const Bytes mac = r.bytes();
    r.expect_end();
    const Bytes expect = request_mac(f.client_id, f.seq, f.payload, key);
    if (!ct_equal(mac, expect)) return std::nullopt;
    return f;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

std::optional<ReplyFrame> decode_reply(BytesView datagram, BytesView key) {
  try {
    Reader r(datagram);
    if (r.u8() != kMagic || r.u8() != kVersion ||
        r.u8() != static_cast<std::uint8_t>(FrameType::kReply)) {
      return std::nullopt;
    }
    ReplyFrame f;
    f.client_id = r.u32();
    f.seq = r.u64();
    f.replica = r.u32();
    const std::uint8_t raw_status = r.u8();
    if (raw_status > static_cast<std::uint8_t>(Status::kStale)) {
      return std::nullopt;
    }
    f.status = static_cast<Status>(raw_status);
    f.global_seq = r.u64();
    f.retry_ms = r.u32();
    f.result = r.bytes();
    const Bytes mac = r.bytes();
    r.expect_end();
    if (!ct_equal(mac, reply_mac(f, key))) return std::nullopt;
    return f;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

std::optional<FrameType> peek_type(BytesView datagram) {
  if (datagram.size() < 7 || datagram[0] != kMagic ||
      datagram[1] != kVersion) {
    return std::nullopt;
  }
  const std::uint8_t t = datagram[2];
  if (t != static_cast<std::uint8_t>(FrameType::kRequest) &&
      t != static_cast<std::uint8_t>(FrameType::kReply)) {
    return std::nullopt;
  }
  return static_cast<FrameType>(t);
}

std::optional<std::uint32_t> peek_client_id(BytesView datagram) {
  if (!peek_type(datagram)) return std::nullopt;
  return (std::uint32_t{datagram[3]} << 24) | (std::uint32_t{datagram[4]} << 16) |
         (std::uint32_t{datagram[5]} << 8) | std::uint32_t{datagram[6]};
}

Bytes wrap_request(const WrappedRequest& w) {
  Writer out;
  out.u8(kWrapTag);
  out.u32(w.client_id);
  out.u64(w.seq);
  out.bytes(w.payload);
  out.bytes(w.mac);
  return std::move(out).take();
}

std::optional<WrappedRequest> unwrap_request(BytesView payload) {
  try {
    Reader r(payload);
    if (r.u8() != kWrapTag) return std::nullopt;
    WrappedRequest w;
    w.client_id = r.u32();
    w.seq = r.u64();
    w.payload = r.bytes();
    w.mac = r.bytes();
    r.expect_end();
    return w;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

}  // namespace sintra::client
