#include "client/udp_front.hpp"

#include <algorithm>
#include <cstring>

namespace sintra::client {

ClientGateway::Address UdpClientFront::pack(const net::SocketAddress& a) {
  return ClientGateway::Address(reinterpret_cast<const char*>(&a.storage),
                                static_cast<std::size_t>(a.length));
}

net::SocketAddress UdpClientFront::unpack(const ClientGateway::Address& addr) {
  net::SocketAddress a;
  a.length = static_cast<socklen_t>(addr.size());
  std::memcpy(&a.storage, addr.data(),
              std::min(sizeof(a.storage), addr.size()));
  return a;
}

UdpClientFront::UdpClientFront(net::EventLoop& loop,
                               const net::SocketAddress& bind_address,
                               ClientGateway& gateway,
                               std::size_t max_receive_batch)
    : loop_(loop),
      socket_(bind_address),
      gateway_(gateway),
      max_receive_batch_(max_receive_batch) {
  gateway_.set_reply([this](const ClientGateway::Address& to, Bytes dgram) {
    socket_.send_to(unpack(to), dgram);
  });
  loop_.add_fd(socket_.fd(), [this] { on_readable(); });
}

UdpClientFront::~UdpClientFront() { loop_.remove_fd(socket_.fd()); }

void UdpClientFront::on_readable() {
  // Bounded drain, mirroring NetEnvironment's inbound batch cap: a
  // client flood must not monopolize the loop over protocol traffic.
  for (std::size_t i = 0; i < max_receive_batch_; ++i) {
    auto received = socket_.receive();
    if (!received) return;
    gateway_.on_request_datagram(received->first, pack(received->second));
  }
}

}  // namespace sintra::client
