// SimClientNet — deterministic in-process transport binding
// ClientGateway and ReplicatedServiceClient to the discrete-event
// simulator.
//
// Replica-side: request datagrams are scheduled into the target
// replica's CPU context via Simulator::at (ingest costs replica time,
// like a real epoll wakeup).  Client-side: replies and client timers
// run via Simulator::post — simulated clients are not group members and
// must not consume replica CPU.  All loss and latency jitter draws from
// one seeded Rng, so a (topology seed, client seed) pair replays
// bit-identically; tests assert exactly that.
//
// Header-only: the sim layer stays optional for users that only link
// the net stack.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/gateway.hpp"
#include "client/service_client.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace sintra::client {

class SimClientNet {
 public:
  struct Options {
    double latency_ms = 1.0;   // one-way client<->replica base latency
    double jitter_ms = 0.5;    // uniform extra, drawn per datagram
    double loss = 0.0;         // independent drop probability each way
    std::uint64_t seed = 1;
  };

  SimClientNet(sim::Simulator& sim, Options opts)
      : sim_(sim), opts_(opts), rng_(opts.seed) {}

  /// Registers replica i's gateway and returns the ReplyFn to install
  /// on it.  The gateway's Address for a client is its decimal id.
  ClientGateway::ReplyFn attach_gateway(int replica, ClientGateway& gw) {
    if (gateways_.size() <= static_cast<std::size_t>(replica)) {
      gateways_.resize(static_cast<std::size_t>(replica) + 1, nullptr);
    }
    gateways_[static_cast<std::size_t>(replica)] = &gw;
    return [this](const ClientGateway::Address& addr, Bytes dgram) {
      deliver_to_client(addr, std::move(dgram));
    };
  }

  /// Hooks for one simulated client.  `sink` receives replica replies
  /// (normally &client's on_datagram, bound by the caller).
  ReplicatedServiceClient::Hooks client_hooks(std::uint32_t client_id) {
    ReplicatedServiceClient::Hooks h;
    h.now_ms = [this] { return sim_.now_ms(); };
    h.send = [this, client_id](int replica, const Bytes& dgram) {
      if (drop()) return;
      sim_.at(sim_.now_ms() + delay(), replica,
              [this, replica, dgram, client_id] {
                ClientGateway* gw = gateway(replica);
                if (gw) {
                  gw->on_request_datagram(dgram,
                                          std::to_string(client_id));
                }
              });
    };
    h.call_later = [this](double delay_ms, std::function<void()> fn) {
      sim_.post(sim_.now_ms() + delay_ms, std::move(fn));
    };
    return h;
  }

  /// Registers the reply sink for a client id.
  void register_client(std::uint32_t client_id,
                       std::function<void(BytesView)> sink) {
    sinks_[client_id] = std::move(sink);
  }

 private:
  ClientGateway* gateway(int replica) {
    const auto i = static_cast<std::size_t>(replica);
    return i < gateways_.size() ? gateways_[i] : nullptr;
  }

  bool drop() { return opts_.loss > 0.0 && rng_.uniform01() < opts_.loss; }
  double delay() { return opts_.latency_ms + rng_.uniform01() * opts_.jitter_ms; }

  void deliver_to_client(const ClientGateway::Address& addr, Bytes dgram) {
    if (drop()) return;
    const auto id = static_cast<std::uint32_t>(std::stoul(addr));
    sim_.post(sim_.now_ms() + delay(),
              [this, id, dgram = std::move(dgram)] {
                auto it = sinks_.find(id);
                if (it != sinks_.end()) it->second(dgram);
              });
  }

  sim::Simulator& sim_;
  Options opts_;
  Rng rng_;
  std::vector<ClientGateway*> gateways_;
  std::unordered_map<std::uint32_t, std::function<void(BytesView)>> sinks_;
};

}  // namespace sintra::client
