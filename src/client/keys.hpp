// Client key registration.
//
// Every replica holds the same table of per-client HMAC keys; a client
// holds only its own.  For deployment convenience the table is derived
// from one master secret (dealt out-of-band alongside the group
// keyfiles): key_i = HMAC-SHA256(secret, "sintra-client-key" || i).
// That keeps the key file O(1) regardless of how many thousands of
// clients the swarm simulates, while still giving every client a
// distinct key — a client learns nothing about its neighbours' keys
// without the master secret.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace sintra::client {

/// Derives client i's key from the master secret.
Bytes derive_client_key(BytesView secret, std::uint32_t client_id);

struct KeyTable {
  std::uint32_t count = 0;  // registered client ids are [0, count)
  Bytes secret;

  [[nodiscard]] bool known(std::uint32_t client_id) const {
    return client_id < count;
  }
  [[nodiscard]] Bytes key(std::uint32_t client_id) const {
    return derive_client_key(secret, client_id);
  }
};

/// Writes/reads the "clients = N" / "secret = <hex>" key file used by
/// sintra_node --client-keys and client_swarm --keys.
void write_key_file(const std::string& path, const KeyTable& table);
KeyTable read_key_file(const std::string& path);  // throws on malformed input

/// Fresh table with a random secret (dealer-side helper).
KeyTable make_key_table(std::uint32_t count, std::uint64_t seed);

}  // namespace sintra::client
