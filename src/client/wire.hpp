// Client/replica wire format for the client service layer (DESIGN.md §12).
//
// Clients are not group members: they talk to the replicas over their own
// UDP lane (sintra_node --client-port), authenticated by a per-client
// HMAC-SHA256 key registered with every replica (SecureSMART-style access
// control at the client/replica boundary).  Two frame kinds:
//
//   request  client -> every replica: (client_id, seq, payload) under the
//            client's MAC.  `seq` is the client's own monotonically
//            increasing request number — the at-most-once dedup handle.
//   reply    replica -> client: (client_id, seq, replica, status,
//            global_seq, retry hint, result) under the same client key.
//            A client accepts an execution result only once t+1 distinct
//            replicas sent byte-identical (status, global_seq, result)
//            tuples, so no t Byzantine replicas can fake an outcome.
//
// Both frames start with a fixed 7-byte advisory header
// (magic, version, type, client_id) so interposers — the chaos proxy's
// client lane, the swarm's reply demultiplexer — can route datagrams
// without trusting them; authenticity is always the MAC's job, exactly
// like the sender-id prefix on the replica-to-replica lane.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace sintra::client {

inline constexpr std::uint8_t kMagic = 0xC5;
inline constexpr std::uint8_t kVersion = 1;

enum class FrameType : std::uint8_t { kRequest = 1, kReply = 2 };

/// Reply status.  kOk carries the execution result; the rest are explicit
/// rejections so a client can tell overload from loss (DESIGN.md §12).
enum class Status : std::uint8_t {
  kOk = 0,          // executed; result + global_seq are authoritative
  kOverloaded = 1,  // shed: per-client or global admission budget exhausted
  kRetryLater = 2,  // backpressure: pipeline window full; honor retry_ms
  kStale = 3,       // seq already executed and its cached reply was evicted
};

const char* status_name(Status s);

struct RequestFrame {
  std::uint32_t client_id = 0;
  std::uint64_t seq = 0;
  Bytes payload;
};

struct ReplyFrame {
  std::uint32_t client_id = 0;
  std::uint64_t seq = 0;
  std::uint32_t replica = 0;
  Status status = Status::kOk;
  std::uint64_t global_seq = 0;  // position in the total order (kOk only)
  std::uint32_t retry_ms = 0;    // backpressure hint (kRetryLater only)
  Bytes result;
};

/// Builds a MAC'd request datagram.
Bytes encode_request(const RequestFrame& f, BytesView key);

/// Builds a MAC'd reply datagram.
Bytes encode_reply(const ReplyFrame& f, BytesView key);

/// Parses and authenticates.  nullopt on malformed frames or a bad MAC —
/// callers count, never throw, per the Byzantine-input discipline.
std::optional<RequestFrame> decode_request(BytesView datagram, BytesView key);
std::optional<ReplyFrame> decode_reply(BytesView datagram, BytesView key);

/// Advisory peeks at the fixed header; no authentication implied.
std::optional<FrameType> peek_type(BytesView datagram);
std::optional<std::uint32_t> peek_client_id(BytesView datagram);

/// Channel-payload wrapper: what an admitted request looks like inside
/// the atomic broadcast.  Replica-originated payloads (sintra_node
/// --send) travel in the same envelope under a reserved pseudo-client id
/// (kLocalClientBase + replica), so client- and replica-originated
/// traffic share one at-most-once identity space; their MAC is empty —
/// the channel's own bundle signatures already attribute them.
inline constexpr std::uint32_t kLocalClientBase = 0xFFFF0000u;

[[nodiscard]] inline bool is_local_client(std::uint32_t id) {
  return id >= kLocalClientBase;
}

struct WrappedRequest {
  std::uint32_t client_id = 0;
  std::uint64_t seq = 0;
  Bytes payload;
  Bytes mac;  // the client's original request MAC (empty for local ids)
};

Bytes wrap_request(const WrappedRequest& w);
/// nullopt if `payload` is not a client envelope (legacy raw payload).
std::optional<WrappedRequest> unwrap_request(BytesView payload);

/// The MAC re-checked at delivery time must cover exactly what the
/// ingest MAC covered, so the statement builder is shared.
Bytes request_mac(std::uint32_t client_id, std::uint64_t seq,
                  BytesView payload, BytesView key);

}  // namespace sintra::client
