// UdpClientFront — binds a ClientGateway to a real UDP socket on the
// replica's epoll event loop (sintra_node --client-port).
//
// The client lane is a separate socket from the replica-to-replica
// lane: group traffic must never queue behind client floods, and the
// gateway's shedding happens before any protocol work.  Addresses
// cross the transport boundary as opaque raw sockaddr bytes — the
// gateway caches them per client (post-MAC-verification) and hands
// them back for replies.
#pragma once

#include <memory>

#include "client/gateway.hpp"
#include "net/event_loop.hpp"
#include "net/udp.hpp"

namespace sintra::client {

class UdpClientFront {
 public:
  /// Binds `bind_address` and registers with the loop.  The gateway's
  /// reply hook is installed here; it must outlive the front.
  UdpClientFront(net::EventLoop& loop, const net::SocketAddress& bind_address,
                 ClientGateway& gateway, std::size_t max_receive_batch = 256);
  ~UdpClientFront();

  UdpClientFront(const UdpClientFront&) = delete;
  UdpClientFront& operator=(const UdpClientFront&) = delete;

  [[nodiscard]] net::SocketAddress local_address() const {
    return socket_.local_address();
  }

 private:
  void on_readable();
  static ClientGateway::Address pack(const net::SocketAddress& a);
  static net::SocketAddress unpack(const ClientGateway::Address& addr);

  net::EventLoop& loop_;
  net::UdpSocket socket_;
  ClientGateway& gateway_;
  std::size_t max_receive_batch_;
};

}  // namespace sintra::client
