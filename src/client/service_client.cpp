#include "client/service_client.hpp"

#include <algorithm>
#include <utility>

namespace sintra::client {

namespace {
obs::Labels client_labels() { return {{"party", "client"}}; }
}  // namespace

ReplicatedServiceClient::ReplicatedServiceClient(Options opts, Hooks hooks)
    : opts_(std::move(opts)),
      hooks_(std::move(hooks)),
      requests_(obs::registry().counter("client.requests", client_labels())),
      completed_(obs::registry().counter("client.completed", client_labels())),
      rejected_(obs::registry().counter("client.rejected", client_labels())),
      timeouts_(obs::registry().counter("client.timeouts", client_labels())),
      retransmits_metric_(
          obs::registry().counter("client.retransmits", client_labels())),
      quorum_ms_(obs::registry().histogram("client.reply_quorum_ms",
                                           client_labels())) {}

void ReplicatedServiceClient::submit(Bytes payload, DoneFn done) {
  queue_.emplace_back(std::move(payload), std::move(done));
  if (!active_) start_next();
}

void ReplicatedServiceClient::start_next() {
  if (queue_.empty()) {
    active_ = false;
    return;
  }
  auto [payload, done] = std::move(queue_.front());
  queue_.pop_front();
  active_ = true;
  requests_.inc();

  RequestFrame req;
  req.client_id = opts_.client_id;
  req.seq = next_seq_++;
  req.payload = std::move(payload);

  pending_ = Pending{};
  pending_.seq = req.seq;
  pending_.datagram = encode_request(req, opts_.key);
  pending_.done = std::move(done);
  pending_.started_ms = hooks_.now_ms();
  pending_.rto_ms = opts_.rto_ms;
  pending_.attempts = 1;
  for (int i = 0; i < opts_.n; ++i) hooks_.send(i, pending_.datagram);
  arm_timer(pending_.rto_ms);
}

void ReplicatedServiceClient::arm_timer(double delay_ms) {
  const std::uint64_t gen = ++pending_.timer_gen;
  hooks_.call_later(delay_ms, [this, gen] { on_timeout(gen); });
}

void ReplicatedServiceClient::on_timeout(std::uint64_t gen) {
  if (!active_ || gen != pending_.timer_gen) return;  // stale timer
  if (pending_.attempts >= opts_.max_attempts) {
    Outcome out;
    out.seq = pending_.seq;
    out.timed_out = true;
    out.latency_ms = hooks_.now_ms() - pending_.started_ms;
    timeouts_.inc();
    finish(std::move(out));
    return;
  }
  ++pending_.attempts;
  ++retransmits_;
  retransmits_metric_.inc();
  for (int i = 0; i < opts_.n; ++i) hooks_.send(i, pending_.datagram);
  pending_.rto_ms = std::min(opts_.rto_max_ms,
                             pending_.rto_ms * opts_.rto_backoff);
  arm_timer(pending_.rto_ms);
}

void ReplicatedServiceClient::on_datagram(BytesView datagram) {
  if (!active_) return;
  if (peek_client_id(datagram) != opts_.client_id) return;
  const auto reply = decode_reply(datagram, opts_.key);
  if (!reply) return;  // mangled/forged: MAC failed, drop silently
  if (reply->seq != pending_.seq) return;  // answer to an older request
  if (reply->replica >= static_cast<std::uint32_t>(opts_.n)) return;

  if (reply->status == Status::kRetryLater) {
    // Backpressure, not loss: retry on the server's schedule without
    // burning the exponential backoff.
    const double hint = std::max<double>(reply->retry_ms, 1.0);
    if (hint < pending_.rto_ms) arm_timer(hint);
    return;
  }

  auto key = std::make_tuple(static_cast<std::uint8_t>(reply->status),
                             reply->global_seq, reply->result);
  auto& voters = pending_.votes[key];
  voters.insert(reply->replica);
  if (voters.size() < static_cast<std::size_t>(opts_.t + 1)) return;

  // Quorum: t+1 distinct replicas agree on this tuple.
  if (reply->status != Status::kOk) {
    // A rejection quorum does NOT prove the request was never executed:
    // admission is per-replica, so t+1 replicas can shed while others
    // propose.  Retrying the *same* seq is always safe — gateways dedup
    // it, and replicas that executed answer from the reply cache,
    // converting a premature rejection into the kOk quorum.  Only after
    // max_attempts do we surface the rejection.
    if (pending_.attempts < opts_.max_attempts) {
      // Back off, then let the timer path retransmit: hammering an
      // overloaded service immediately would defeat the shedding.
      pending_.votes.clear();
      pending_.rto_ms = std::min(opts_.rto_max_ms,
                                 pending_.rto_ms * opts_.rto_backoff);
      arm_timer(pending_.rto_ms);
      return;
    }
    Outcome out;
    out.ok = false;
    out.status = reply->status;
    out.seq = pending_.seq;
    out.latency_ms = hooks_.now_ms() - pending_.started_ms;
    rejected_.inc();
    finish(std::move(out));
    return;
  }

  Outcome out;
  out.ok = true;
  out.status = Status::kOk;
  out.seq = pending_.seq;
  out.global_seq = reply->global_seq;
  out.result = reply->result;
  out.latency_ms = hooks_.now_ms() - pending_.started_ms;
  completed_.inc();
  quorum_ms_.observe(out.latency_ms);
  finish(std::move(out));
}

void ReplicatedServiceClient::finish(Outcome outcome) {
  ++pending_.timer_gen;  // disarm any in-flight timer
  active_ = false;
  DoneFn done = std::move(pending_.done);
  pending_.votes.clear();
  if (done) done(std::move(outcome));
  if (!active_) start_next();  // done() may have resubmitted already
}

}  // namespace sintra::client
