#include "client/keys.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "crypto/hmac.hpp"
#include "util/atomic_file.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace sintra::client {

Bytes derive_client_key(BytesView secret, std::uint32_t client_id) {
  Writer st;
  st.str("sintra-client-key");
  st.u32(client_id);
  return crypto::hmac(crypto::HashKind::kSha256, secret, st.data());
}

void write_key_file(const std::string& path, const KeyTable& table) {
  std::ostringstream out;
  out << "# SINTRA client key file: shared by every replica; clients get\n"
         "# only their own derived key out-of-band.\n"
         "clients = " << table.count << "\n"
         "secret = " << hex_encode(table.secret) << "\n";
  util::atomic_write_file(path, out.str());
}

KeyTable read_key_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("client key file not readable: " + path);
  KeyTable table;
  bool have_count = false, have_secret = false;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string name, eq, value;
    if (!(ls >> name >> eq >> value) || eq != "=") continue;
    if (name == "clients") {
      table.count = static_cast<std::uint32_t>(std::stoul(value));
      have_count = true;
    } else if (name == "secret") {
      table.secret = hex_decode(value);
      have_secret = true;
    }
  }
  if (!have_count || !have_secret || table.secret.empty()) {
    throw std::runtime_error("client key file missing clients=/secret=: " +
                             path);
  }
  return table;
}

KeyTable make_key_table(std::uint32_t count, std::uint64_t seed) {
  KeyTable table;
  table.count = count;
  Rng rng(seed);
  table.secret = rng.bytes(32);
  return table;
}

}  // namespace sintra::client
