// ClientGateway — the replica-side half of the client service layer
// (DESIGN.md §12).
//
// One gateway sits in front of each replica's atomic channel.  It is
// transport-agnostic: datagrams arrive via on_request_datagram() (fed by
// net::UdpClientFront in real deployments or client::SimClientNet in
// simulation), admitted requests leave through a submit hook (the
// channel's batching proposer), and executions re-enter through
// on_delivered() when the total order hands payloads back.
//
// The pipeline per request:
//
//   MAC verify  ->  dedup (per-client seq)  ->  admission control
//   (per-client + global token buckets, bounded pending window)  ->
//   wrap + propose  ->  ... atomic broadcast ...  ->  on_delivered:
//   delivery-time MAC re-check + at-most-once execute  ->  signed reply.
//
// Determinism: everything downstream of the broadcast — unwrap, the
// delivery-time MAC re-check, dedup, execution order — is a pure
// function of the delivered payload stream plus the shared key table,
// so every correct replica executes the identical request subsequence
// and replies with identical (status, global_seq, result) tuples.
// That is what makes the client's t+1 matching-reply quorum sound.
// Admission decisions (token buckets, pending depth) are deliberately
// *upstream* of the broadcast and may differ per replica; they only
// decide who proposes, never what executes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "client/keys.hpp"
#include "client/wire.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"

namespace sintra::client {

class ClientGateway {
 public:
  struct Options {
    std::uint32_t replica = 0;  // this replica's party id
    int n = 4;
    int t = 1;
    // Per-client token bucket (requests/sec, burst capacity).
    double rate_per_sec = 100.0;
    double burst = 20.0;
    // Global shed threshold across all clients; 0 disables.
    double global_rate_per_sec = 0.0;
    double global_burst = 0.0;
    // Cap on distinct clients tracked; new clients beyond it are shed.
    // 0 = unlimited.
    std::size_t max_clients = 0;
    // Backpressure: max requests proposed but not yet executed here.
    std::size_t max_pending = 1024;
    // Cached wire-ready replies retained per client for retransmits.
    std::size_t reply_cache = 4;
    // Hint sent with kRetryLater.
    std::uint32_t retry_hint_ms = 50;
  };

  /// Opaque transport address of a client (raw sockaddr bytes for UDP,
  /// a label in simulation).  The gateway never interprets it.
  using Address = std::string;

  /// Hands an admitted, wrapped request to the proposer.  Must return
  /// false when the channel cannot accept more work (closed); the
  /// request is then shed.
  using SubmitFn = std::function<bool(Bytes wrapped)>;
  /// Sends a wire-ready reply datagram back to a client address.
  using ReplyFn = std::function<void(const Address&, Bytes datagram)>;
  /// Monotonic milliseconds used by the token buckets.  In simulation
  /// this is virtual time, keeping admission decisions replayable.
  using ClockFn = std::function<double()>;

  ClientGateway(Options opts, ClockFn clock);

  void set_key_table(KeyTable table) { keys_ = std::move(table); }
  void set_submit(SubmitFn fn) { submit_ = std::move(fn); }
  void set_reply(ReplyFn fn) { reply_ = std::move(fn); }

  /// Test hook: mangles outgoing reply datagrams (Byzantine replica).
  void set_reply_mangler(std::function<Bytes(Bytes)> fn) {
    mangle_ = std::move(fn);
  }

  /// Ingest path: one client datagram from the transport.
  void on_request_datagram(BytesView datagram, const Address& from);

  /// Replica-originated payload (sintra_node --send).  Routed through
  /// the same wrap/propose/dedup machinery under this replica's pseudo
  /// client id, so there is exactly one at-most-once policy.  Local
  /// submissions bypass MAC + rate limiting (they are trusted) but
  /// still respect the pending window: when it is full they queue
  /// internally and drain as executions complete.
  void submit_local(Bytes payload);

  /// A payload executed by this replica in total order.
  struct Executed {
    bool local = false;          // originated from submit_local on some replica
    std::uint32_t client_id = 0;
    std::uint64_t seq = 0;
    std::uint64_t global_seq = 0;  // execution index in the total order
    Bytes payload;
  };

  /// Delivery path: every payload the atomic channel delivers, in
  /// order.  Returns the execution record on first execution, nullopt
  /// for duplicates / forged entries (counted).  Sends the reply (or a
  /// cached one) as a side effect when the client's address is known.
  std::optional<Executed> on_delivered(BytesView channel_payload);

  /// Unwraps without executing — used by recovery replay rendering and
  /// diagnostics.  Static: depends only on the payload bytes.
  static std::optional<WrappedRequest> peek(BytesView channel_payload) {
    return unwrap_request(channel_payload);
  }

  [[nodiscard]] std::size_t pending_depth() const { return pending_total_; }
  /// True when no submit_local payloads are waiting for window space —
  /// the safe moment to close the channel under local load.
  [[nodiscard]] bool local_queue_empty() const { return local_queue_.empty(); }
  [[nodiscard]] std::uint64_t executed_count() const { return next_global_; }
  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] std::uint32_t local_client_id() const {
    return kLocalClientBase + opts_.replica;
  }

 private:
  struct TokenBucket {
    double tokens = 0;
    double last_ms = 0;
    bool take(double now_ms, double rate_per_sec, double burst);
  };

  struct ClientState {
    Address addr;            // last authenticated source address
    bool addr_known = false;
    TokenBucket bucket;
    // At-most-once execution record: everything <= floor executed,
    // plus the sparse set above it (out-of-order delivery happens when
    // different replicas propose different seqs of the same client).
    std::uint64_t floor = 0;  // seqs start at 1; 0 = none executed
    std::set<std::uint64_t> executed_above;
    std::size_t pending = 0;  // proposed-not-yet-executed (here)
    // Recent wire-ready replies, newest last, for retransmit hits.
    std::deque<std::pair<std::uint64_t, Bytes>> replies;
  };

  ClientState& state(std::uint32_t client_id);
  bool already_executed(const ClientState& cs, std::uint64_t seq) const;
  void mark_executed(ClientState& cs, std::uint64_t seq);
  void send_reply(std::uint32_t client_id, ClientState& cs,
                  const ReplyFrame& frame);
  void reject(std::uint32_t client_id, ClientState& cs, std::uint64_t seq,
              Status status);
  void drain_local_queue();
  void set_pending_gauge();

  Options opts_;
  ClockFn clock_;
  KeyTable keys_;
  SubmitFn submit_;
  ReplyFn reply_;
  std::function<Bytes(Bytes)> mangle_;

  std::unordered_map<std::uint32_t, ClientState> clients_;
  TokenBucket global_bucket_;
  std::size_t pending_total_ = 0;
  std::uint64_t next_global_ = 0;  // executions so far == next global_seq
  std::uint64_t local_seq_ = 0;    // submit_local sequence numbers
  std::deque<Bytes> local_queue_;  // local payloads awaiting window space

  // Metrics (docs/OBSERVABILITY.md "Client gateway"); handles resolved
  // once at construction, updated lock-free.
  obs::Counter& admitted_;
  obs::Counter& shed_;
  obs::Counter& retry_later_;
  obs::Counter& dedup_hits_;
  obs::Counter& rejected_auth_;
  obs::Counter& executed_;
  obs::Counter& replies_sent_;
  obs::Counter& dup_deliveries_;
  obs::Gauge& pending_depth_;
};

}  // namespace sintra::client
