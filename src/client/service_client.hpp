// ReplicatedServiceClient — the client-side half of the client service
// layer (DESIGN.md §12).
//
// A client multicasts each request to all n replicas and accepts an
// outcome only when t+1 *distinct* replicas return byte-identical
// (status, global_seq, result) tuples: with at most t corrupted
// replicas, at least one vote in any t+1 matching set came from a
// correct replica, so the agreed tuple is the one the correct group
// executed.  Corrupted or mangled replies fail their MAC (dropped) or
// simply never gather t+1 votes.
//
// Retransmission uses exponential backoff from rto_ms and re-multicasts
// the identical datagram; the gateways' dedup makes that idempotent.
// kRetryLater replies carry a server hint that overrides the backoff —
// backpressure is distinct from loss.  Transport is injected via Hooks
// so the same state machine runs over real UDP sockets (client_swarm)
// and the deterministic simulator (tests).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>

#include "client/wire.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"

namespace sintra::client {

class ReplicatedServiceClient {
 public:
  struct Options {
    std::uint32_t client_id = 0;
    Bytes key;
    int n = 4;
    int t = 1;
    double rto_ms = 250.0;       // initial retransmit timeout
    double rto_backoff = 2.0;    // multiplier per timeout
    double rto_max_ms = 2000.0;
    int max_attempts = 10;       // sends per request before giving up
  };

  struct Outcome {
    bool ok = false;             // t+1 matching kOk replies
    Status status = Status::kOk; // quorum status (kOk / kOverloaded / ...)
    std::uint64_t seq = 0;
    std::uint64_t global_seq = 0;
    Bytes result;
    bool timed_out = false;      // max_attempts exhausted without a quorum
    double latency_ms = 0;       // submit-to-quorum, client clock
  };
  using DoneFn = std::function<void(Outcome)>;

  struct Hooks {
    /// Sends a datagram to replica i.
    std::function<void(int replica, const Bytes&)> send;
    /// One-shot timer; the returned generation check is internal — fns
    /// must simply run once after roughly delay_ms.
    std::function<void(double delay_ms, std::function<void()>)> call_later;
    std::function<double()> now_ms;
  };

  ReplicatedServiceClient(Options opts, Hooks hooks);

  /// Queues a request.  Requests are issued strictly one-at-a-time (the
  /// gateway admits one outstanding request per client); `done` fires
  /// when a quorum forms, a rejection quorum forms, or attempts run out.
  void submit(Bytes payload, DoneFn done);

  /// Feeds a datagram received from any replica.
  void on_datagram(BytesView datagram);

  [[nodiscard]] std::uint32_t client_id() const { return opts_.client_id; }
  [[nodiscard]] bool idle() const { return !active_ && queue_.empty(); }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }

 private:
  struct Pending {
    std::uint64_t seq = 0;
    Bytes datagram;        // the exact multicast frame, reused on retransmit
    DoneFn done;
    double started_ms = 0;
    double rto_ms = 0;
    int attempts = 0;
    std::uint64_t timer_gen = 0;  // invalidates stale timer callbacks
    // Vote key (status, global_seq, result) -> replicas that sent it.
    std::map<std::tuple<std::uint8_t, std::uint64_t, Bytes>,
             std::set<std::uint32_t>> votes;
  };

  void start_next();
  void arm_timer(double delay_ms);
  void on_timeout(std::uint64_t gen);
  void finish(Outcome outcome);

  Options opts_;
  Hooks hooks_;
  std::uint64_t next_seq_ = 1;
  std::deque<std::pair<Bytes, DoneFn>> queue_;
  bool active_ = false;
  Pending pending_;
  std::uint64_t retransmits_ = 0;

  // Shared across all client instances in a process (the swarm runs
  // thousands), labeled party="client".
  obs::Counter& requests_;
  obs::Counter& completed_;
  obs::Counter& rejected_;
  obs::Counter& timeouts_;
  obs::Counter& retransmits_metric_;
  obs::Histogram& quorum_ms_;
};

}  // namespace sintra::client
