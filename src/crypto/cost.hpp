// CPU cost model bridging real cryptographic work to simulated time.
//
// The paper characterizes each host by the measured wall-clock time of one
// 1024-bit modular exponentiation (the `exp` column of the tables in §4:
// 93 ms on P0/Zurich, 427 ms on the P-Pro in California, ...).  Our
// Montgomery arithmetic counts limb-multiplications in a thread-local
// work counter (bignum::work_counter); this module calibrates how much of
// that work one reference 1024-bit modexp performs, so the simulator can
// convert *actual* work done by a protocol handler into virtual
// milliseconds on any host:  ms = work / work_per_exp1024() * exp_ms.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sintra::crypto {

/// Work units of one 1024-bit modexp with full-size exponent (calibrated
/// once per process; deterministic).
std::uint64_t work_per_exp1024();

/// Converts accumulated bignum work into milliseconds on a host whose
/// measured 1024-bit modexp takes `exp_ms` milliseconds.
double work_to_ms(std::uint64_t work, double exp_ms);

/// Amortization epoch for the precomputation caches of the fast
/// exponentiation layer (fixed-base comb tables, memoized hash-to-group
/// bases and subgroup-membership checks).  The discrete-event simulator
/// bumps the epoch when a run starts, so every run rebuilds — and is
/// re-charged for — its precomputation from scratch: virtual timing stays
/// deterministic across repeated runs, and amortization is modeled as a
/// per-deployment startup cost rather than leaking between experiments.
std::uint64_t cache_epoch() noexcept;
void bump_cache_epoch() noexcept;

/// RAII helper: captures the work counter on construction; `elapsed()`
/// reports work performed since.
class WorkMeter {
 public:
  WorkMeter();
  [[nodiscard]] std::uint64_t elapsed() const;

 private:
  std::uint64_t start_;
};

/// Optimistic-verification accounting: one call increments
/// obs::registry()'s "crypto.optimistic_hits" / "crypto.fallbacks"
/// counter labeled {op}.  A *hit* is a combine-first attempt whose single
/// result check succeeded with no per-share verification at all; a
/// *fallback* is an attempt whose check failed and dropped into
/// individual share verification (so fallbacks > 0 is the observable
/// signature of a Byzantine share submitter).
void count_optimistic_hit(const char* op);
void count_fallback(const char* op);

/// Adds `shares` to the "crypto.parallel_verify_shares" counter labeled
/// {op}: how many per-share fallback verifications ran through
/// WorkPool::run_parallel instead of the serial loop.  Zero in the
/// simulator (inline pools verify serially), nonzero on a real node with
/// --crypto-threads facing a Byzantine share submitter.
void count_parallel_verify(const char* op, std::size_t shares);

/// RAII instrumentation for one threshold-crypto operation: on
/// destruction it increments obs::registry()'s "crypto.ops" counter for
/// `op` and adds the bignum work performed in the scope to "crypto.work".
/// Reads the work counter only — it never adds work, so simulator timing
/// and the BENCH_crypto work-unit numbers are unchanged by it.
class OpScope {
 public:
  explicit OpScope(const char* op);
  ~OpScope();
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  const char* op_;
  std::uint64_t start_;
};

}  // namespace sintra::crypto
