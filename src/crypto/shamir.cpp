#include "crypto/shamir.hpp"

#include <set>
#include <stdexcept>

namespace sintra::crypto {

SecretPolynomial::SecretPolynomial(Rng& rng, const BigInt& secret,
                                   const BigInt& modulus, int k)
    : modulus_(modulus) {
  if (k < 1) throw std::invalid_argument("SecretPolynomial: k < 1");
  coeffs_.reserve(static_cast<std::size_t>(k));
  coeffs_.push_back(secret.mod(modulus_));
  for (int i = 1; i < k; ++i) {
    coeffs_.push_back(BigInt::random_below(rng, modulus_));
  }
}

BigInt SecretPolynomial::share_for(int party_index) const {
  const BigInt x{party_index + 1};
  // Horner evaluation mod m.
  BigInt acc;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = (acc * x + coeffs_[i]).mod(modulus_);
  }
  return acc;
}

std::vector<BigInt> SecretPolynomial::shares(int n) const {
  std::vector<BigInt> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(share_for(i));
  return out;
}

namespace {
void check_distinct(const std::vector<int>& indices) {
  std::set<int> seen(indices.begin(), indices.end());
  if (seen.size() != indices.size())
    throw std::invalid_argument("lagrange: duplicate indices");
  for (int i : indices) {
    if (i < 0) throw std::invalid_argument("lagrange: negative index");
  }
}
}  // namespace

BigInt lagrange_coeff_zero(const std::vector<int>& indices, int j,
                           const BigInt& q) {
  check_distinct(indices);
  const BigInt xj{indices[static_cast<std::size_t>(j)] + 1};
  BigInt num{1}, den{1};
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (static_cast<int>(i) == j) continue;
    const BigInt xi{indices[i] + 1};
    num = (num * xi).mod(q);
    den = (den * (xi - xj)).mod(q);
  }
  return (num * den.mod(q).mod_inverse(q)).mod(q);
}

BigInt lagrange_zero(const std::vector<SharePoint>& points, const BigInt& q) {
  std::vector<int> indices;
  indices.reserve(points.size());
  for (const auto& p : points) indices.push_back(p.index);
  BigInt acc;
  for (std::size_t j = 0; j < points.size(); ++j) {
    const BigInt lambda =
        lagrange_coeff_zero(indices, static_cast<int>(j), q);
    acc = (acc + lambda * points[j].value).mod(q);
  }
  return acc;
}

BigInt factorial(int n) {
  BigInt out{1};
  for (int i = 2; i <= n; ++i) out *= BigInt{i};
  return out;
}

BigInt integer_lagrange_coeff(const BigInt& delta,
                              const std::vector<int>& indices, int j) {
  check_distinct(indices);
  const BigInt xj{indices[static_cast<std::size_t>(j)] + 1};
  BigInt num = delta;
  BigInt den{1};
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (static_cast<int>(i) == j) continue;
    const BigInt xi{indices[i] + 1};
    num *= xi;          // (0 - x_i) contributes sign below
    den *= (xi - xj);   // (x_i - x_j) — note: matches (0-x_i)/(x_j-x_i) up to
                        // a shared (-1)^{k-1} that cancels between num/den
  }
  // num/den = delta * prod x_i / prod (x_i - x_j)
  //         = delta * prod (0 - x_i) / prod (x_j - x_i)   (signs cancel)
  const auto [quot, rem] = BigInt::div_mod(num, den);
  if (!rem.is_zero())
    throw std::logic_error(
        "integer_lagrange_coeff: delta does not clear denominators");
  return quot;
}

namespace {
// Key covers the scale and the first `len` indices *in order*: prefixes of
// a request are themselves valid keys, which is what longest-prefix
// extension looks up.
std::string cache_key(const char* tag, const BigInt& scale,
                      const std::vector<int>& indices, std::size_t len) {
  std::string key = tag;
  key += scale.to_hex();
  for (std::size_t i = 0; i < len; ++i) {
    key += ',';
    key += std::to_string(indices[i]);
  }
  return key;
}

// Montgomery batch inversion: one mod_inverse + 3m multiplies for m
// inverses.  Values must be nonzero mod q.
std::vector<BigInt> batch_mod_inverse(const std::vector<BigInt>& vals,
                                      const BigInt& q) {
  const std::size_t m = vals.size();
  std::vector<BigInt> prefix(m);  // prefix[i] = vals[0]*..*vals[i] mod q
  BigInt acc{1};
  for (std::size_t i = 0; i < m; ++i) {
    acc = (acc * vals[i]).mod(q);
    prefix[i] = acc;
  }
  BigInt inv_acc = prefix[m - 1].mod_inverse(q);
  std::vector<BigInt> out(m);
  for (std::size_t i = m; i-- > 1;) {
    out[i] = (inv_acc * prefix[i - 1]).mod(q);
    inv_acc = (inv_acc * vals[i]).mod(q);
  }
  out[0] = inv_acc;
  return out;
}

// All field Lagrange coefficients at zero for `indices`, from scratch with
// one batched inversion.  Value-identical to calling lagrange_coeff_zero
// per j (same field elements, canonically reduced).
std::vector<BigInt> full_field_coeffs(const std::vector<int>& indices,
                                      const BigInt& q) {
  const std::size_t k = indices.size();
  std::vector<BigInt> nums(k), dens(k);
  for (std::size_t j = 0; j < k; ++j) {
    const BigInt xj{indices[j] + 1};
    BigInt num{1}, den{1};
    for (std::size_t i = 0; i < k; ++i) {
      if (i == j) continue;
      const BigInt xi{indices[i] + 1};
      num = (num * xi).mod(q);
      den = (den * (xi - xj)).mod(q);
    }
    nums[j] = std::move(num);
    dens[j] = den.mod(q);
  }
  std::vector<BigInt> coeffs(k);
  if (k == 1) {
    coeffs[0] = BigInt{1}.mod(q);
    return coeffs;
  }
  const std::vector<BigInt> inv = batch_mod_inverse(dens, q);
  for (std::size_t j = 0; j < k; ++j) {
    coeffs[j] = (nums[j] * inv[j]).mod(q);
  }
  return coeffs;
}

// Extends field coefficients for indices[0..len-1) by the point at
// position len-1: λ'_j = λ_j · x · (x − x_j)^{-1}, and the new point's own
// coefficient from the same batch of inverses.  One mod_inverse total.
bool extend_field_coeffs(std::vector<BigInt>& coeffs,
                         const std::vector<int>& indices, std::size_t new_len,
                         const BigInt& q) {
  const std::size_t m = new_len - 1;  // old size
  const BigInt x{indices[m] + 1};
  std::vector<BigInt> diffs(m);  // (x − x_j) mod q, nonzero: indices distinct
  for (std::size_t j = 0; j < m; ++j) {
    diffs[j] = (x - BigInt{indices[j] + 1}).mod(q);
    if (diffs[j].is_zero()) return false;
  }
  const std::vector<BigInt> inv = batch_mod_inverse(diffs, q);
  BigInt prod_x{1};    // Π x_i over the old set
  BigInt prod_inv{1};  // Π (x − x_i)^{-1} over the old set
  for (std::size_t j = 0; j < m; ++j) {
    coeffs[j] = ((coeffs[j] * x).mod(q) * inv[j]).mod(q);
    prod_x = (prod_x * BigInt{indices[j] + 1}).mod(q);
    prod_inv = (prod_inv * inv[j]).mod(q);
  }
  // λ_x = Π x_i / Π (x_i − x); each (x_i − x) = −(x − x_i) flips sign.
  BigInt lam = (prod_x * prod_inv).mod(q);
  if (m % 2 == 1) lam = (q - lam).mod(q);
  coeffs.push_back(std::move(lam));
  return true;
}

// Extends integer (Shoup) coefficients by the point at position len-1:
// c'_j = c_j · x / (x − x_j), exact for any subset under Δ = n!.  Returns
// false (caller recomputes) if a division is inexact — that only happens
// when Δ was not n! for these indices, and the from-scratch path then
// raises the same logic_error the non-incremental code did.
bool extend_integer_coeffs(std::vector<BigInt>& coeffs, const BigInt& delta,
                           const std::vector<int>& indices,
                           std::size_t new_len) {
  const std::size_t m = new_len - 1;
  const BigInt x{indices[m] + 1};
  for (std::size_t j = 0; j < m; ++j) {
    const BigInt den = x - BigInt{indices[j] + 1};
    const auto [quot, rem] = BigInt::div_mod(coeffs[j] * x, den);
    if (!rem.is_zero()) return false;
    coeffs[j] = quot;
  }
  std::vector<int> prefix(indices.begin(),
                          indices.begin() + static_cast<std::ptrdiff_t>(new_len));
  coeffs.push_back(
      integer_lagrange_coeff(delta, prefix, static_cast<int>(m)));
  return true;
}
}  // namespace

void LagrangeCache::insert_locked(std::string key,
                                  std::vector<BigInt> coeffs) {
  if (entries_.size() >= kMaxEntries) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    entries_.erase(victim);
  }
  entries_.emplace(std::move(key),
                   Entry{std::move(coeffs), ++use_clock_});
}

std::vector<BigInt> LagrangeCache::lookup(
    const char* tag, const BigInt& scale, const std::vector<int>& indices,
    const std::function<std::vector<BigInt>()>& compute,
    const std::function<bool(std::vector<BigInt>&, std::size_t)>& extend) {
  std::string key = cache_key(tag, scale, indices, indices.size());
  const std::lock_guard lk(mu_);
  if (auto it = entries_.find(key); it != entries_.end()) {
    it->second.last_use = ++use_clock_;
    ++stats_.hits;
    return it->second.coeffs;
  }
  // Longest cached prefix, extended one appended point at a time.
  for (std::size_t len = indices.size(); len-- > 1;) {
    auto it = entries_.find(cache_key(tag, scale, indices, len));
    if (it == entries_.end()) continue;
    it->second.last_use = ++use_clock_;
    std::vector<BigInt> coeffs = it->second.coeffs;
    bool ok = true;
    for (std::size_t grow = len + 1; ok && grow <= indices.size(); ++grow) {
      ok = extend(coeffs, grow);
    }
    if (!ok) break;  // fall through to the from-scratch path
    ++stats_.prefix_extends;
    insert_locked(std::move(key), coeffs);
    return coeffs;
  }
  ++stats_.full_computes;
  std::vector<BigInt> coeffs = compute();
  insert_locked(std::move(key), coeffs);
  return coeffs;
}

std::vector<BigInt> LagrangeCache::coeffs_zero(const std::vector<int>& indices,
                                               const BigInt& q) {
  check_distinct(indices);
  return lookup(
      "q:", q, indices, [&] { return full_field_coeffs(indices, q); },
      [&](std::vector<BigInt>& coeffs, std::size_t new_len) {
        return extend_field_coeffs(coeffs, indices, new_len, q);
      });
}

std::vector<BigInt> LagrangeCache::integer_coeffs(
    const BigInt& delta, const std::vector<int>& indices) {
  check_distinct(indices);
  return lookup(
      "d:", delta, indices,
      [&] {
        std::vector<BigInt> coeffs;
        coeffs.reserve(indices.size());
        for (std::size_t j = 0; j < indices.size(); ++j) {
          coeffs.push_back(
              integer_lagrange_coeff(delta, indices, static_cast<int>(j)));
        }
        return coeffs;
      },
      [&](std::vector<BigInt>& coeffs, std::size_t new_len) {
        return extend_integer_coeffs(coeffs, delta, indices, new_len);
      });
}

LagrangeCache::Stats LagrangeCache::stats() {
  const std::lock_guard lk(mu_);
  return stats_;
}

}  // namespace sintra::crypto
