#include "crypto/shamir.hpp"

#include <set>
#include <stdexcept>

namespace sintra::crypto {

SecretPolynomial::SecretPolynomial(Rng& rng, const BigInt& secret,
                                   const BigInt& modulus, int k)
    : modulus_(modulus) {
  if (k < 1) throw std::invalid_argument("SecretPolynomial: k < 1");
  coeffs_.reserve(static_cast<std::size_t>(k));
  coeffs_.push_back(secret.mod(modulus_));
  for (int i = 1; i < k; ++i) {
    coeffs_.push_back(BigInt::random_below(rng, modulus_));
  }
}

BigInt SecretPolynomial::share_for(int party_index) const {
  const BigInt x{party_index + 1};
  // Horner evaluation mod m.
  BigInt acc;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = (acc * x + coeffs_[i]).mod(modulus_);
  }
  return acc;
}

std::vector<BigInt> SecretPolynomial::shares(int n) const {
  std::vector<BigInt> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(share_for(i));
  return out;
}

namespace {
void check_distinct(const std::vector<int>& indices) {
  std::set<int> seen(indices.begin(), indices.end());
  if (seen.size() != indices.size())
    throw std::invalid_argument("lagrange: duplicate indices");
  for (int i : indices) {
    if (i < 0) throw std::invalid_argument("lagrange: negative index");
  }
}
}  // namespace

BigInt lagrange_coeff_zero(const std::vector<int>& indices, int j,
                           const BigInt& q) {
  check_distinct(indices);
  const BigInt xj{indices[static_cast<std::size_t>(j)] + 1};
  BigInt num{1}, den{1};
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (static_cast<int>(i) == j) continue;
    const BigInt xi{indices[i] + 1};
    num = (num * xi).mod(q);
    den = (den * (xi - xj)).mod(q);
  }
  return (num * den.mod(q).mod_inverse(q)).mod(q);
}

BigInt lagrange_zero(const std::vector<SharePoint>& points, const BigInt& q) {
  std::vector<int> indices;
  indices.reserve(points.size());
  for (const auto& p : points) indices.push_back(p.index);
  BigInt acc;
  for (std::size_t j = 0; j < points.size(); ++j) {
    const BigInt lambda =
        lagrange_coeff_zero(indices, static_cast<int>(j), q);
    acc = (acc + lambda * points[j].value).mod(q);
  }
  return acc;
}

BigInt factorial(int n) {
  BigInt out{1};
  for (int i = 2; i <= n; ++i) out *= BigInt{i};
  return out;
}

BigInt integer_lagrange_coeff(const BigInt& delta,
                              const std::vector<int>& indices, int j) {
  check_distinct(indices);
  const BigInt xj{indices[static_cast<std::size_t>(j)] + 1};
  BigInt num = delta;
  BigInt den{1};
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (static_cast<int>(i) == j) continue;
    const BigInt xi{indices[i] + 1};
    num *= xi;          // (0 - x_i) contributes sign below
    den *= (xi - xj);   // (x_i - x_j) — note: matches (0-x_i)/(x_j-x_i) up to
                        // a shared (-1)^{k-1} that cancels between num/den
  }
  // num/den = delta * prod x_i / prod (x_i - x_j)
  //         = delta * prod (0 - x_i) / prod (x_j - x_i)   (signs cancel)
  const auto [quot, rem] = BigInt::div_mod(num, den);
  if (!rem.is_zero())
    throw std::logic_error(
        "integer_lagrange_coeff: delta does not clear denominators");
  return quot;
}

namespace {
std::string cache_key(const BigInt& scale, const std::vector<int>& indices) {
  std::string key = scale.to_hex();
  for (int i : indices) {
    key += ',';
    key += std::to_string(i);
  }
  return key;
}
}  // namespace

std::vector<BigInt> LagrangeCache::coeffs_zero(const std::vector<int>& indices,
                                               const BigInt& q) {
  std::string key = "q:" + cache_key(q, indices);
  const std::lock_guard lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    std::vector<BigInt> coeffs;
    coeffs.reserve(indices.size());
    for (std::size_t j = 0; j < indices.size(); ++j) {
      coeffs.push_back(lagrange_coeff_zero(indices, static_cast<int>(j), q));
    }
    if (entries_.size() >= kMaxEntries) entries_.clear();
    it = entries_.emplace(std::move(key), std::move(coeffs)).first;
  }
  return it->second;
}

std::vector<BigInt> LagrangeCache::integer_coeffs(
    const BigInt& delta, const std::vector<int>& indices) {
  std::string key = "d:" + cache_key(delta, indices);
  const std::lock_guard lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    std::vector<BigInt> coeffs;
    coeffs.reserve(indices.size());
    for (std::size_t j = 0; j < indices.size(); ++j) {
      coeffs.push_back(
          integer_lagrange_coeff(delta, indices, static_cast<int>(j)));
    }
    if (entries_.size() >= kMaxEntries) entries_.clear();
    it = entries_.emplace(std::move(key), std::move(coeffs)).first;
  }
  return it->second;
}

}  // namespace sintra::crypto
