#include "crypto/cost.hpp"

#include <atomic>
#include <map>

#include "bignum/montgomery.hpp"
#include "obs/metrics.hpp"

namespace sintra::crypto {

namespace {
// Starts at 1 so a default-initialized stamp of 0 always reads as stale.
std::atomic<std::uint64_t> g_cache_epoch{1};

struct OpCounters {
  obs::Counter* ops;
  obs::Counter* work;
};

// Hot-path discipline (obs/metrics.hpp): resolve registry handles once,
// then update with relaxed atomics.  Op labels are string literals, so a
// per-thread pointer-keyed cache resolves each call site through the
// registry mutex exactly once; after that an OpScope destruction is a
// small map find plus two atomic adds — no lock, no Labels allocation.
// Registry handles stay valid for the process lifetime, so the cached
// pointers never dangle (reset() zeroes values but keeps instances).
const OpCounters& op_counters(const char* op) {
  thread_local std::map<const char*, OpCounters> cache;
  auto it = cache.find(op);
  if (it == cache.end()) {
    auto& reg = obs::registry();
    const obs::Labels labels{{"op", op}};
    it = cache
             .emplace(op, OpCounters{&reg.counter("crypto.ops", labels),
                                     &reg.counter("crypto.work", labels)})
             .first;
  }
  return it->second;
}
}  // namespace

std::uint64_t cache_epoch() noexcept {
  return g_cache_epoch.load(std::memory_order_relaxed);
}

void bump_cache_epoch() noexcept {
  g_cache_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t work_per_exp1024() {
  static const std::uint64_t calibrated = [] {
    // A fixed odd 1024-bit modulus and a full-size exponent; the value of
    // the result is irrelevant, only the work performed matters.
    using bignum::BigInt;
    const BigInt m = (BigInt{1} << 1024) - BigInt{129};  // odd
    const BigInt e = (BigInt{1} << 1023) + BigInt{12345};
    const BigInt base{0x0123456789abcdefLL};
    const std::uint64_t before = bignum::work_counter();
    const bignum::Montgomery mont(m);
    (void)mont.pow(base, e);
    return bignum::work_counter() - before;
  }();
  return calibrated;
}

double work_to_ms(std::uint64_t work, double exp_ms) {
  return static_cast<double>(work) /
         static_cast<double>(work_per_exp1024()) * exp_ms;
}

WorkMeter::WorkMeter() : start_(bignum::work_counter()) {}

std::uint64_t WorkMeter::elapsed() const {
  return bignum::work_counter() - start_;
}

void count_optimistic_hit(const char* op) {
  obs::registry().counter("crypto.optimistic_hits", {{"op", op}}).inc();
}

void count_fallback(const char* op) {
  obs::registry().counter("crypto.fallbacks", {{"op", op}}).inc();
}

void count_parallel_verify(const char* op, std::size_t shares) {
  obs::registry()
      .counter("crypto.parallel_verify_shares", {{"op", op}})
      .inc(shares);
}

OpScope::OpScope(const char* op)
    : op_(op), start_(bignum::work_counter()) {}

OpScope::~OpScope() {
  const std::uint64_t work = bignum::work_counter() - start_;
  const OpCounters& c = op_counters(op_);
  c.ops->inc();
  c.work->inc(work);
}

}  // namespace sintra::crypto
