// The trusted dealer (paper §2: "SINTRA currently needs a trusted dealer
// to generate the secret keys of all threshold schemes ... required only
// once, when the system is initialized").
//
// For a group of n servers tolerating t < n/3 faults, the dealer produces
// per-party key material for:
//   - pairwise HMAC link keys (128-bit, paper §3);
//   - a standard RSA signature key pair per party (atomic broadcast
//     message signing; also the shares of multi-signatures);
//   - two threshold signature deals: the broadcast quorum
//     k = ceil((n+t+1)/2) used by consistent broadcast, and the agreement
//     quorum k = n - t used to justify votes in Byzantine agreement;
//   - the threshold coin with k = t + 1;
//   - the TDH2 threshold cryptosystem with k = t + 1.
//
// Expensive parameters (safe-prime RSA moduli, Schnorr groups) are
// memoized per (bits, seed) within the process so tests and benchmarks can
// deal many configurations cheaply.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "crypto/coin.hpp"
#include "crypto/multi_sig.hpp"
#include "crypto/tdh2.hpp"
#include "crypto/threshold_sig.hpp"

namespace sintra::crypto {

/// Which implementation backs the ThresholdSigScheme interface
/// (paper §2.1's drop-in choice; experiments default to multi-signatures).
enum class SigImpl { kThresholdRsa, kMultiSig };

struct DealerConfig {
  int n = 4;
  int t = 1;
  int rsa_bits = 512;      // standard-signature and threshold-RSA modulus
  int dl_p_bits = 512;     // Schnorr group modulus (paper: 1024)
  int dl_q_bits = 160;     // subgroup order (paper: 160)
  HashKind hash = HashKind::kSha256;
  SigImpl sig_impl = SigImpl::kMultiSig;
  std::uint64_t seed = 1;
};

/// Everything party i must hold before the protocols start.
struct PartyKeys {
  int index = -1;
  int n = 0;
  int t = 0;
  HashKind hash = HashKind::kSha256;

  /// link_keys[j]: symmetric HMAC key shared with party j.
  std::vector<Bytes> link_keys;

  std::shared_ptr<const RsaKeyPair> own_rsa;
  std::shared_ptr<const MultiSigPublic> rsa_publics;  // all standard keys

  std::shared_ptr<ThresholdSigScheme> sig_broadcast;  // k = ceil((n+t+1)/2)
  std::shared_ptr<ThresholdSigScheme> sig_agreement;  // k = n - t
  std::shared_ptr<ThresholdCoin> coin;                // k = t + 1
  std::shared_ptr<Tdh2Party> cipher;                  // k = t + 1

  /// Verifies a standard signature from party j (atomic broadcast).
  [[nodiscard]] bool verify_party_sig(int j, BytesView msg,
                                      BytesView sig) const;
  /// Signs with this party's standard key.
  [[nodiscard]] Bytes sign(BytesView msg) const;
};

/// Raw (serializable) Shoup threshold-signature key material for one
/// party: the scheme's public data plus this party's secret share.
struct RawRsaThreshold {
  RsaThresholdPublic pub;
  BigInt share;
};

/// The flat, serializable form of everything one party receives from the
/// dealer (paper §3: the server's "initialization data").  materialize()
/// builds the live PartyKeys from it; crypto/keyfile.hpp serializes it.
struct RawPartyKeys {
  int index = -1;
  int n = 0;
  int t = 0;
  HashKind hash = HashKind::kSha256;
  SigImpl sig_impl = SigImpl::kMultiSig;
  int k_broadcast = 0;
  int k_agreement = 0;

  std::vector<Bytes> link_keys;
  RsaKeyPair own_rsa;
  std::vector<RsaPublicKey> all_rsa_publics;

  // Present only for SigImpl::kThresholdRsa.
  std::optional<RawRsaThreshold> threshold_broadcast;
  std::optional<RawRsaThreshold> threshold_agreement;

  // Threshold coin: group parameters, verification keys, own share.
  BigInt coin_p, coin_q, coin_g;
  std::vector<BigInt> coin_verification;
  BigInt coin_share;
  int coin_k = 0;

  // TDH2 threshold cryptosystem.
  BigInt tdh2_h, tdh2_gbar;
  std::vector<BigInt> tdh2_verification;
  BigInt tdh2_share;
  int tdh2_k = 0;
};

/// Builds the live scheme objects from raw key material (server-side
/// startup after loading a key file).
PartyKeys materialize(const RawPartyKeys& raw);

struct Deal {
  DealerConfig config;
  std::vector<PartyKeys> parties;
  /// Serializable per-party key material (same order as `parties`).
  std::vector<RawPartyKeys> raw;
  /// The channel's global encryption key, usable by non-members
  /// (paper §3.4: external senders encrypt to the group).
  std::shared_ptr<const Tdh2Public> encryption_key;
};

/// Runs the trusted dealer.  Deterministic for a given config (including
/// seed).  Throws std::invalid_argument unless n > 3t and n >= 1.
Deal run_dealer(const DealerConfig& config);

}  // namespace sintra::crypto
