#include "crypto/tdh2.hpp"

#include <functional>
#include <set>
#include <stdexcept>

#include "crypto/aes128.hpp"
#include "crypto/cost.hpp"
#include "crypto/shamir.hpp"
#include "crypto/work_pool.hpp"
#include "util/serde.hpp"

namespace sintra::crypto {

namespace {

struct Ciphertext {
  Bytes c;      // AES-CTR bulk ciphertext
  Bytes label;
  BigInt u;     // g^r
  BigInt u_bar; // g_bar^r
  BigInt e;     // Fiat–Shamir challenge
  BigInt f;     // response s + r*e
};

Ciphertext parse_ct(BytesView raw) {
  Reader r(raw);
  Ciphertext out;
  out.c = r.bytes();
  out.label = r.bytes();
  out.u = BigInt::read(r);
  out.u_bar = BigInt::read(r);
  out.e = BigInt::read(r);
  out.f = BigInt::read(r);
  r.expect_end();
  return out;
}

Bytes serialize_ct(const Ciphertext& ct) {
  Writer w;
  w.bytes(ct.c);
  w.bytes(ct.label);
  ct.u.write(w);
  ct.u_bar.write(w);
  ct.e.write(w);
  ct.f.write(w);
  return std::move(w).take();
}

// Challenge e = H2(c, L, u, w, u_bar, w_bar) as an exponent.
BigInt ct_challenge(const DlogGroup& grp, const Ciphertext& ct, const BigInt& w,
                    const BigInt& w_bar) {
  Writer wr;
  wr.bytes(ct.c);
  wr.bytes(ct.label);
  ct.u.write(wr);
  w.write(wr);
  ct.u_bar.write(wr);
  w_bar.write(wr);
  return grp.hash_to_exponent(wr.data());
}

// Derives the AES key and CTR nonce from the DH value h^r.
std::pair<Bytes, Bytes> derive_keys(const DlogGroup& grp, const BigInt& hr) {
  Writer w1;
  w1.u8(0x01);
  hr.write(w1);
  Bytes key = hash_bytes(grp.hash_kind(), w1.data());
  key.resize(Aes128::kKeySize);
  Writer w2;
  w2.u8(0x02);
  hr.write(w2);
  Bytes nonce = hash_bytes(grp.hash_kind(), w2.data());
  nonce.resize(Aes128::kBlockSize);
  return {std::move(key), std::move(nonce)};
}

struct ParsedShare {
  BigInt ui;  // u^{x_i}
  DleqProof proof;
};

ParsedShare parse_share(BytesView raw) {
  Reader r(raw);
  ParsedShare out;
  out.ui = BigInt::read(r);
  out.proof = DleqProof::read(r);
  r.expect_end();
  return out;
}

// g, g_bar, h and the verification keys live for the whole deal and go
// through the group's precomputation cache; u, u_bar, u_i are fresh per
// ciphertext, so a table build would never pay off for them.
constexpr DleqHints kShareHints{.g1_long_lived = true,
                                .h1_long_lived = true,
                                .g2_long_lived = false,
                                .h2_long_lived = false};

bool ct_valid_impl(const Tdh2Public& pub, const Ciphertext& ct) {
  const DlogGroup& grp = pub.group;
  if (!grp.is_member(ct.u) || !grp.is_member(ct.u_bar)) return false;
  if (ct.e.is_negative() || ct.f.is_negative() || ct.e >= grp.q() ||
      ct.f >= grp.q()) {
    return false;
  }
  // w = g^f * u^{-e}, w_bar = g_bar^f * u_bar^{-e} — each one simultaneous
  // exponentiation with the negation folded into the group order.
  const BigInt w = grp.dual_exp_neg(grp.g(), ct.f, true, ct.u, ct.e, false);
  const BigInt w_bar =
      grp.dual_exp_neg(pub.g_bar, ct.f, true, ct.u_bar, ct.e, false);
  return ct_challenge(grp, ct, w, w_bar) == ct.e;
}

}  // namespace

Bytes Tdh2Public::encrypt(BytesView plaintext, BytesView label,
                          Rng& rng) const {
  const OpScope ops("tdh2.encrypt");
  const BigInt r = group.random_exponent(rng);
  const BigInt s = group.random_exponent(rng);

  Ciphertext ct;
  ct.label.assign(label.begin(), label.end());
  ct.u = group.exp_cached(group.g(), r);
  ct.u_bar = group.exp_cached(g_bar, r);
  const BigInt hr = group.exp_cached(h, r);
  const auto [key, nonce] = derive_keys(group, hr);
  ct.c = Aes128(key).ctr_crypt(nonce, plaintext);

  const BigInt w = group.exp_cached(group.g(), s);
  const BigInt w_bar = group.exp_cached(g_bar, s);
  ct.e = ct_challenge(group, ct, w, w_bar);
  ct.f = (s + r * ct.e).mod(group.q());
  return serialize_ct(ct);
}

bool Tdh2Public::ciphertext_valid(BytesView ciphertext) const {
  try {
    return ct_valid_impl(*this, parse_ct(ciphertext));
  } catch (const SerdeError&) {
    return false;
  }
}

std::optional<Bytes> tdh2_ciphertext_label(BytesView ciphertext) {
  try {
    return parse_ct(ciphertext).label;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

Tdh2Party::Tdh2Party(std::shared_ptr<const Tdh2Public> pub, int index,
                     BigInt share, std::uint64_t prover_seed)
    : pub_(std::move(pub)),
      index_(index),
      share_(std::move(share)),
      prover_rng_(prover_seed),
      verify_rng_(prover_seed ^ 0x7dec2b47c4f5eeULL) {
  pub_->group.hint_group_size(pub_->n);
}

std::optional<Bytes> Tdh2Party::decrypt_share(BytesView ciphertext) {
  if (index_ < 0) throw std::logic_error("Tdh2Party: verify-only handle");
  const OpScope ops("tdh2.decrypt_share");
  Ciphertext ct;
  try {
    ct = parse_ct(ciphertext);
  } catch (const SerdeError&) {
    return std::nullopt;
  }
  if (!ct_valid_impl(*pub_, ct)) return std::nullopt;

  const DlogGroup& grp = pub_->group;
  const BigInt ui = grp.exp_reduced(ct.u, share_);
  const DleqProof proof = dleq_prove(
      grp, grp.g(), pub_->verification[static_cast<std::size_t>(index_)],
      ct.u, ui, share_, prover_rng_, kShareHints);
  Writer w;
  ui.write(w);
  proof.write(w);
  return std::move(w).take();
}

bool Tdh2Party::verify_share(BytesView ciphertext, int signer,
                             BytesView share) const {
  if (signer < 0 || signer >= pub_->n) return false;
  const OpScope ops("tdh2.verify_share");
  Ciphertext ct;
  ParsedShare s;
  try {
    ct = parse_ct(ciphertext);
    s = parse_share(share);
  } catch (const SerdeError&) {
    return false;
  }
  if (!ct_valid_impl(*pub_, ct)) return false;
  const DlogGroup& grp = pub_->group;
  return dleq_verify(grp, grp.g(),
                     pub_->verification[static_cast<std::size_t>(signer)],
                     ct.u, s.ui, s.proof, kShareHints);
}

Bytes Tdh2Party::combine(
    BytesView ciphertext,
    const std::vector<std::pair<int, Bytes>>& shares) const {
  const OpScope ops("tdh2.combine");
  const Ciphertext ct = parse_ct(ciphertext);
  if (!ct_valid_impl(*pub_, ct))
    throw std::invalid_argument("Tdh2Party::combine: invalid ciphertext");
  if (static_cast<int>(shares.size()) < pub_->k)
    throw std::invalid_argument("Tdh2Party::combine: need k shares");

  const DlogGroup& grp = pub_->group;
  std::vector<int> indices;
  std::vector<BigInt> values;
  std::set<int> seen;
  for (const auto& [idx, raw] : shares) {
    if (static_cast<int>(indices.size()) == pub_->k) break;
    if (idx < 0 || idx >= pub_->n || !seen.insert(idx).second)
      throw std::invalid_argument(
          "Tdh2Party::combine: bad or duplicate signer index");
    indices.push_back(idx);
    values.push_back(parse_share(raw).ui);
  }

  // h^r = u^x via Lagrange in the exponent, as one simultaneous
  // multi-exponentiation with memoized coefficients.
  const std::vector<BigInt> lambdas = lagrange_.coeffs_zero(indices, grp.q());
  std::vector<std::pair<BigInt, BigInt>> terms;
  terms.reserve(indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) {
    terms.emplace_back(values[j], lambdas[j]);
  }
  const BigInt hr = grp.multi_exp(terms);
  const auto [key, nonce] = derive_keys(grp, hr);
  return Aes128(key).ctr_crypt(nonce, ct.c);
}

std::optional<Bytes> Tdh2Party::combine_checked(
    BytesView ciphertext, const std::vector<std::pair<int, Bytes>>& shares,
    WorkPool* pool_arg) const {
  Ciphertext ct;
  try {
    ct = parse_ct(ciphertext);
  } catch (const SerdeError&) {
    return std::nullopt;
  }
  if (!ct_valid_impl(*pub_, ct)) return std::nullopt;
  const DlogGroup& grp = pub_->group;

  // Working pool: first-come order, one share per signer, blacklisted
  // signers skipped, unparseable shares blacklisted outright.
  struct Candidate {
    int signer;
    ParsedShare parsed;
  };
  std::vector<Candidate> pool;
  std::set<int> seen;
  pool.reserve(shares.size());
  for (const auto& [idx, raw] : shares) {
    if (idx < 0 || idx >= pub_->n || blacklist_.contains(idx)) continue;
    if (seen.count(idx) != 0) continue;
    Candidate cand{idx, {}};
    try {
      cand.parsed = parse_share(raw);
    } catch (const SerdeError&) {
      blacklist_.add(idx);
      continue;
    }
    seen.insert(idx);
    pool.push_back(std::move(cand));
  }

  bool first_attempt = true;
  while (static_cast<int>(pool.size()) >= pub_->k) {
    const auto kk = static_cast<std::size_t>(pub_->k);
    std::vector<DleqStatement> stmts;
    stmts.reserve(kk);
    for (std::size_t j = 0; j < kk; ++j) {
      const auto signer = static_cast<std::size_t>(pool[j].signer);
      stmts.push_back({grp.g(), pub_->verification[signer], ct.u,
                       pool[j].parsed.ui, pool[j].parsed.proof});
    }
    bool ok;
    {
      const std::lock_guard lk(verify_mu_);
      ok = dleq_batch_verify(grp, stmts, verify_rng_, kShareHints,
                             BatchMembership::kIndividual);
    }
    if (ok) {
      if (first_attempt) count_optimistic_hit("tdh2");
      const OpScope ops("tdh2.combine");
      std::vector<int> indices;
      indices.reserve(kk);
      for (std::size_t j = 0; j < kk; ++j) indices.push_back(pool[j].signer);
      const std::vector<BigInt> lambdas =
          lagrange_.coeffs_zero(indices, grp.q());
      std::vector<std::pair<BigInt, BigInt>> terms;
      terms.reserve(kk);
      for (std::size_t j = 0; j < kk; ++j) {
        terms.emplace_back(pool[j].parsed.ui, lambdas[j]);
      }
      const BigInt hr = grp.multi_exp(terms);
      const auto [key, nonce] = derive_keys(grp, hr);
      return Aes128(key).ctr_crypt(nonce, ct.c);
    }

    first_attempt = false;
    count_fallback("tdh2");
    std::vector<std::size_t> bad;
    if (pool_arg != nullptr && !pool_arg->inline_mode() && stmts.size() > 1) {
      // Threaded fallback: scalar verdict per statement across cores;
      // identical bad set to the serial bisection (see
      // ThresholdCoin::assemble_checked).
      std::vector<char> good(stmts.size(), 0);
      std::vector<std::function<void()>> jobs;
      jobs.reserve(stmts.size());
      for (std::size_t j = 0; j < stmts.size(); ++j) {
        jobs.push_back([&grp, &stmts, &good, j] {
          const DleqStatement& s = stmts[j];
          good[j] = dleq_verify(grp, s.g1, s.h1, s.g2, s.h2, s.proof,
                                kShareHints)
                        ? 1
                        : 0;
        });
      }
      pool_arg->run_parallel(jobs);
      count_parallel_verify("tdh2", stmts.size());
      for (std::size_t j = 0; j < stmts.size(); ++j) {
        if (good[j] == 0) bad.push_back(j);
      }
    } else {
      const std::lock_guard lk(verify_mu_);
      bad = dleq_find_invalid(grp, stmts, verify_rng_, kShareHints);
    }
    if (bad.empty()) return std::nullopt;  // see ThresholdCoin::assemble_checked
    for (const std::size_t bi : bad) blacklist_.add(pool[bi].signer);
    for (auto it = bad.rbegin(); it != bad.rend(); ++it) {
      pool.erase(pool.begin() + static_cast<long>(*it));
    }
  }
  return std::nullopt;
}

std::unique_ptr<Tdh2Party> Tdh2Deal::make_party(int i) const {
  if (i < 0) {
    return std::make_unique<Tdh2Party>(pub, -1, BigInt{0}, 0);
  }
  return std::make_unique<Tdh2Party>(pub, i,
                                     shares[static_cast<std::size_t>(i)],
                                     0x7d42 + static_cast<std::uint64_t>(i));
}

Tdh2Deal deal_tdh2(Rng& rng, int n, int k, const DlogGroup& group) {
  if (n < 1 || k < 1 || k > n)
    throw std::invalid_argument("deal_tdh2: need 1 <= k <= n");
  const BigInt x = group.random_exponent(rng);
  const SecretPolynomial poly(rng, x, group.q(), k);

  auto pub = std::make_shared<Tdh2Public>(
      Tdh2Public{n, k, group, BigInt{}, BigInt{}, {}});
  pub->h = group.exp(group.g(), x);
  // Independent second generator derived by hashing — no one knows its
  // discrete log relative to g.
  Writer w;
  group.p().write(w);
  group.g().write(w);
  pub->g_bar = group.hash_to_group(concat({to_bytes("tdh2.gbar"), w.data()}));

  Tdh2Deal deal;
  deal.shares = poly.shares(n);
  pub->verification.reserve(static_cast<std::size_t>(n));
  for (const BigInt& xi : deal.shares) {
    pub->verification.push_back(group.exp(group.g(), xi));
  }
  deal.pub = std::move(pub);
  return deal;
}

}  // namespace sintra::crypto
