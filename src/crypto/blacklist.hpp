// Per-scheme-handle signer blacklist for optimistic share verification.
//
// The combine-first fast paths (ThresholdSigScheme::combine_checked,
// ThresholdCoin::assemble_checked, Tdh2Party::combine_checked) accept
// shares *unverified*; when an assembled result fails its single check,
// the fallback identifies the offending shares individually and records
// their signers here.  The blacklist is local to one scheme handle — it
// is an optimization (skip shares that can only force another fallback),
// never a protocol-visible accusation, so a false positive is impossible
// by construction: only the scalar share verifier puts a signer on it.
#pragma once

#include <mutex>
#include <set>

namespace sintra::crypto {

class SignerBlacklist {
 public:
  [[nodiscard]] bool contains(int signer) const {
    const std::lock_guard lk(mu_);
    return bad_.count(signer) != 0;
  }

  void add(int signer) {
    const std::lock_guard lk(mu_);
    bad_.insert(signer);
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard lk(mu_);
    return bad_.size();
  }

 private:
  mutable std::mutex mu_;
  std::set<int> bad_;
};

}  // namespace sintra::crypto
