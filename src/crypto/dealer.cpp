#include "crypto/dealer.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

namespace sintra::crypto {

namespace {

// Process-wide memoization of the expensive parameter generation.  Keyed
// by (bits, seed) so distinct configurations stay independent while
// repeated deals (tests, benchmark sweeps) are cheap.
std::mutex g_cache_mutex;

const RsaKeyPair& cached_safe_rsa(int bits, std::uint64_t seed) {
  static std::map<std::pair<int, std::uint64_t>, RsaKeyPair> cache;
  const std::lock_guard<std::mutex> lock(g_cache_mutex);
  auto it = cache.find({bits, seed});
  if (it == cache.end()) {
    Rng rng(seed ^ 0x5afeULL);
    it = cache.emplace(std::pair{bits, seed},
                       rsa_generate(rng, bits, /*safe_primes=*/true))
             .first;
  }
  return it->second;
}

const bignum::SchnorrGroup& cached_group(int p_bits, int q_bits,
                                         std::uint64_t seed) {
  static std::map<std::tuple<int, int, std::uint64_t>, bignum::SchnorrGroup>
      cache;
  const std::lock_guard<std::mutex> lock(g_cache_mutex);
  auto it = cache.find({p_bits, q_bits, seed});
  if (it == cache.end()) {
    Rng rng(seed ^ 0x96f0ULL);
    it = cache.emplace(std::tuple{p_bits, q_bits, seed},
                       bignum::generate_schnorr_group(rng, p_bits, q_bits))
             .first;
  }
  return it->second;
}

std::vector<RsaKeyPair> cached_party_rsa(int n, int bits, std::uint64_t seed) {
  static std::map<std::tuple<int, std::uint64_t>, std::vector<RsaKeyPair>>
      cache;
  const std::lock_guard<std::mutex> lock(g_cache_mutex);
  auto it = cache.find({bits, seed});
  if (it == cache.end()) {
    it = cache.emplace(std::tuple{bits, seed}, std::vector<RsaKeyPair>{})
             .first;
  }
  auto& keys = it->second;
  while (static_cast<int>(keys.size()) < n) {
    // Each additional key derives from a per-index seed so growing the
    // group preserves earlier parties' keys.
    Rng krng(seed ^ 0xba5eULL ^ (static_cast<std::uint64_t>(keys.size()) + 1));
    keys.push_back(rsa_generate(krng, bits, /*safe_primes=*/false));
  }
  return std::vector<RsaKeyPair>(keys.begin(), keys.begin() + n);
}

}  // namespace

bool PartyKeys::verify_party_sig(int j, BytesView msg, BytesView sig) const {
  if (j < 0 || j >= n) return false;
  return rsa_verify(rsa_publics->keys[static_cast<std::size_t>(j)], msg, sig,
                    hash);
}

Bytes PartyKeys::sign(BytesView msg) const {
  return rsa_sign(*own_rsa, msg, hash);
}

PartyKeys materialize(const RawPartyKeys& raw) {
  PartyKeys keys;
  keys.index = raw.index;
  keys.n = raw.n;
  keys.t = raw.t;
  keys.hash = raw.hash;
  keys.link_keys = raw.link_keys;
  keys.own_rsa = std::make_shared<const RsaKeyPair>(raw.own_rsa);
  keys.rsa_publics = std::make_shared<const MultiSigPublic>(
      MultiSigPublic{raw.n, raw.n, raw.all_rsa_publics, raw.hash});

  if (raw.sig_impl == SigImpl::kThresholdRsa) {
    if (!raw.threshold_broadcast || !raw.threshold_agreement)
      throw std::invalid_argument(
          "materialize: threshold-RSA key material missing");
    keys.sig_broadcast = std::make_shared<RsaThresholdScheme>(
        std::make_shared<const RsaThresholdPublic>(raw.threshold_broadcast->pub),
        raw.index, raw.threshold_broadcast->share,
        0x7e51 + static_cast<std::uint64_t>(raw.index));
    keys.sig_agreement = std::make_shared<RsaThresholdScheme>(
        std::make_shared<const RsaThresholdPublic>(raw.threshold_agreement->pub),
        raw.index, raw.threshold_agreement->share,
        0x7e52 + static_cast<std::uint64_t>(raw.index));
  } else {
    auto ms_broadcast = std::make_shared<const MultiSigPublic>(MultiSigPublic{
        raw.n, raw.k_broadcast, raw.all_rsa_publics, raw.hash});
    auto ms_agreement = std::make_shared<const MultiSigPublic>(MultiSigPublic{
        raw.n, raw.k_agreement, raw.all_rsa_publics, raw.hash});
    keys.sig_broadcast = std::make_shared<MultiSigScheme>(
        std::move(ms_broadcast), raw.index, keys.own_rsa);
    keys.sig_agreement = std::make_shared<MultiSigScheme>(
        std::move(ms_agreement), raw.index, keys.own_rsa);
  }

  const DlogGroup group(raw.coin_p, raw.coin_q, raw.coin_g, raw.hash);
  auto coin_pub = std::make_shared<const CoinPublic>(
      CoinPublic{raw.n, raw.coin_k, group, raw.coin_verification});
  keys.coin = std::make_shared<ThresholdCoin>(
      std::move(coin_pub), raw.index, raw.coin_share,
      0xc011 + static_cast<std::uint64_t>(raw.index));

  auto tdh2_pub = std::make_shared<const Tdh2Public>(
      Tdh2Public{raw.n, raw.tdh2_k, group, raw.tdh2_h, raw.tdh2_gbar,
                 raw.tdh2_verification});
  keys.cipher = std::make_shared<Tdh2Party>(
      std::move(tdh2_pub), raw.index, raw.tdh2_share,
      0x7d42 + static_cast<std::uint64_t>(raw.index));
  return keys;
}

Deal run_dealer(const DealerConfig& config) {
  const int n = config.n;
  const int t = config.t;
  if (n < 1 || t < 0 || n <= 3 * t)
    throw std::invalid_argument("run_dealer: need n > 3t and n >= 1");

  Rng rng(config.seed ^ 0xdea1e4ULL);

  // --- Per-party standard RSA keys ---
  const std::vector<RsaKeyPair> party_rsa =
      cached_party_rsa(n, config.rsa_bits, config.seed);
  const int k_broadcast = (n + t + 2) / 2;  // ceil((n+t+1)/2)
  const int k_agreement = n - t;
  std::vector<RsaPublicKey> pubs;
  pubs.reserve(static_cast<std::size_t>(n));
  for (const auto& kp : party_rsa) pubs.push_back(kp.pub);

  // --- Threshold RSA deals (only materialized when selected) ---
  RsaThresholdDeal rsa_bcast_deal, rsa_agree_deal;
  if (config.sig_impl == SigImpl::kThresholdRsa) {
    const RsaKeyPair& base = cached_safe_rsa(config.rsa_bits, config.seed);
    rsa_bcast_deal =
        deal_rsa_threshold_with_key(rng, n, k_broadcast, base, config.hash);
    rsa_agree_deal =
        deal_rsa_threshold_with_key(rng, n, k_agreement, base, config.hash);
  }

  // --- Discrete-log schemes ---
  const bignum::SchnorrGroup& sg =
      cached_group(config.dl_p_bits, config.dl_q_bits, config.seed);
  const DlogGroup group(sg.p, sg.q, sg.g, config.hash);
  const CoinDeal coin_deal = deal_coin(rng, n, t + 1, group);
  const Tdh2Deal tdh2_deal = deal_tdh2(rng, n, t + 1, group);

  // --- Pairwise link keys ---
  std::vector<std::vector<Bytes>> link(static_cast<std::size_t>(n));
  for (auto& row : link) row.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      Bytes key = rng.bytes(16);
      link[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = key;
      link[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          std::move(key);
    }
  }

  Deal deal;
  deal.config = config;
  deal.encryption_key = tdh2_deal.pub;
  deal.raw.reserve(static_cast<std::size_t>(n));
  deal.parties.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    RawPartyKeys raw;
    raw.index = i;
    raw.n = n;
    raw.t = t;
    raw.hash = config.hash;
    raw.sig_impl = config.sig_impl;
    raw.k_broadcast = k_broadcast;
    raw.k_agreement = k_agreement;
    raw.link_keys = link[static_cast<std::size_t>(i)];
    raw.own_rsa = party_rsa[static_cast<std::size_t>(i)];
    raw.all_rsa_publics = pubs;
    if (config.sig_impl == SigImpl::kThresholdRsa) {
      raw.threshold_broadcast = RawRsaThreshold{
          *rsa_bcast_deal.pub,
          rsa_bcast_deal.shares[static_cast<std::size_t>(i)]};
      raw.threshold_agreement = RawRsaThreshold{
          *rsa_agree_deal.pub,
          rsa_agree_deal.shares[static_cast<std::size_t>(i)]};
    }
    raw.coin_p = sg.p;
    raw.coin_q = sg.q;
    raw.coin_g = sg.g;
    raw.coin_verification = coin_deal.pub->verification;
    raw.coin_share = coin_deal.shares[static_cast<std::size_t>(i)];
    raw.coin_k = t + 1;
    raw.tdh2_h = tdh2_deal.pub->h;
    raw.tdh2_gbar = tdh2_deal.pub->g_bar;
    raw.tdh2_verification = tdh2_deal.pub->verification;
    raw.tdh2_share = tdh2_deal.shares[static_cast<std::size_t>(i)];
    raw.tdh2_k = t + 1;

    deal.parties.push_back(materialize(raw));
    deal.raw.push_back(std::move(raw));
  }
  return deal;
}

}  // namespace sintra::crypto
