// Threshold signatures.
//
// SINTRA's consistent broadcast and agreement protocols justify votes with
// (n, k, t) dual-threshold signatures (paper §2.1): among n parties, up to
// t corrupted, k > t shares are needed to assemble a signature.  Two
// interchangeable implementations exist behind one interface:
//
//  - RsaThresholdScheme — Shoup's "Practical Threshold Signatures"
//    (EUROCRYPT 2000): shares of the RSA private exponent d over Z_{p'q'},
//    share correctness proven with Fiat–Shamir discrete-log-equality
//    proofs, recombination via integer Lagrange coefficients scaled by
//    Δ = n!.  Produces a single standard RSA-FDH signature.
//
//  - MultiSigScheme (multi_sig.hpp) — a vector of k ordinary RSA
//    signatures, "particularly suited when computation is more expensive
//    than communication" (paper §2.1); this is what the experiments ran.
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "crypto/blacklist.hpp"
#include "crypto/rsa.hpp"
#include "crypto/shamir.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace sintra::crypto {

class WorkPool;

/// Per-party handle to a threshold signature scheme.  Thread-compatible;
/// each simulated party owns its own instance.
class ThresholdSigScheme {
 public:
  virtual ~ThresholdSigScheme() = default;

  [[nodiscard]] virtual int n() const = 0;
  [[nodiscard]] virtual int k() const = 0;

  /// This party's 0-based index.
  [[nodiscard]] virtual int index() const = 0;

  /// Produces this party's signature share on `msg`.
  [[nodiscard]] virtual Bytes sign_share(BytesView msg) = 0;

  /// Verifies a share claimed to come from party `signer`.
  [[nodiscard]] virtual bool verify_share(BytesView msg, int signer,
                                          BytesView share) const = 0;

  /// Combines k shares into a full signature.  Throws
  /// std::invalid_argument on fewer than k shares or duplicate signers;
  /// behaviour on *unverified* bad shares is a combine that fails verify()
  /// — the robustness property combine_checked() exploits.  Shares need
  /// NOT be individually verified first: callers either verify them
  /// eagerly and call combine(), or hand unverified shares to
  /// combine_checked() and let it check the one assembled signature.
  [[nodiscard]] virtual Bytes combine(
      BytesView msg, const std::vector<std::pair<int, Bytes>>& shares)
      const = 0;

  /// Verifies an assembled threshold signature.
  [[nodiscard]] virtual bool verify(BytesView msg, BytesView sig) const = 0;

  /// A checked combine's output: the signature plus the signer set it was
  /// assembled from — every share of `used` verified either implicitly
  /// (the assembled signature passed verify()) or explicitly (fallback),
  /// so the set is safe to forward as a justification.
  struct CheckedSignature {
    Bytes sig;
    std::vector<int> used;
  };

  /// Combine-first fast path: picks the first k plausible shares (in the
  /// order given, skipping duplicates and locally blacklisted signers),
  /// combines them *without* per-share verification, and verifies the one
  /// assembled signature — k share verifications collapse into one cheap
  /// public-exponent check when every submitter is honest.  If the check
  /// fails, the fallback verifies the chosen shares individually,
  /// blacklists the offenders on this handle (their later shares are
  /// ignored), and retries with replacement shares.  Returns nullopt when
  /// fewer than k shares from distinct non-blacklisted signers are
  /// available — with n - t >= k honest parties, callers just wait for
  /// more shares.  Thread-safe: may run on a crypto worker pool.  When a
  /// threaded `pool` is given, the fallback verifies the chosen shares
  /// via WorkPool::run_parallel — k verifications across cores instead of
  /// a serial loop; the outcome (blacklist set, returned signature) is
  /// identical either way, so a null/inline pool is never a semantic
  /// change, only a slower fallback.
  [[nodiscard]] std::optional<CheckedSignature> combine_checked(
      BytesView msg, const std::vector<std::pair<int, Bytes>>& shares,
      WorkPool* pool = nullptr) const;

  /// True if `signer` was caught submitting a bad share to this handle
  /// (local knowledge only — see crypto/blacklist.hpp).
  [[nodiscard]] bool is_blacklisted(int signer) const {
    return blacklist_.contains(signer);
  }

 private:
  mutable SignerBlacklist blacklist_;
};

/// Public (dealer-published) data of the Shoup scheme.
struct RsaThresholdPublic {
  int n = 0;
  int k = 0;
  BigInt modulus;             // N = pq, p and q safe primes
  BigInt e;                   // prime public exponent > n
  BigInt v;                   // verification base, a square mod N
  std::vector<BigInt> vi;     // v^{s_i} for each party
  BigInt delta;               // n!
  HashKind hash = HashKind::kSha256;
};

class RsaThresholdScheme final : public ThresholdSigScheme {
 public:
  /// `share` is s_i; pass index = -1 and share = 0 for a verify/combine-only
  /// handle (e.g. an external client).
  RsaThresholdScheme(std::shared_ptr<const RsaThresholdPublic> pub, int index,
                     BigInt share, std::uint64_t prover_seed);
  ~RsaThresholdScheme() override;

  [[nodiscard]] int n() const override { return pub_->n; }
  [[nodiscard]] int k() const override { return pub_->k; }
  [[nodiscard]] int index() const override { return index_; }

  [[nodiscard]] Bytes sign_share(BytesView msg) override;
  [[nodiscard]] bool verify_share(BytesView msg, int signer,
                                  BytesView share) const override;
  [[nodiscard]] Bytes combine(
      BytesView msg,
      const std::vector<std::pair<int, Bytes>>& shares) const override;
  [[nodiscard]] bool verify(BytesView msg, BytesView sig) const override;

 private:
  struct FastPath;

  std::shared_ptr<const RsaThresholdPublic> pub_;
  int index_;
  BigInt share_;
  Rng prover_rng_;
  // Epoch-stamped precomputation: persistent Montgomery context plus comb
  // tables for v and the per-signer inverse verification keys.  Builds
  // are charged to the work counter when they happen (see crypto/cost.hpp).
  mutable std::unique_ptr<FastPath> fast_;
  // Combine sees the same few signer sets over and over.
  mutable LagrangeCache lagrange_;
};

/// Dealer output: the public data plus each party's secret share.
struct RsaThresholdDeal {
  std::shared_ptr<const RsaThresholdPublic> pub;
  std::vector<BigInt> shares;  // s_i, one per party

  /// Convenience: builds party i's scheme handle.
  [[nodiscard]] std::unique_ptr<RsaThresholdScheme> make_party(int i) const;
};

/// Deals a fresh (n, k) Shoup threshold RSA key with the given modulus
/// size.  Safe-prime generation dominates the cost; standard sizes are
/// pre-generated in crypto/dealer.cpp's parameter cache.
RsaThresholdDeal deal_rsa_threshold(Rng& rng, int n, int k, int modulus_bits,
                                    HashKind hash = HashKind::kSha256);

/// Same, but reuses an existing safe-prime RSA key (p, q safe) so that
/// expensive prime generation can be cached across deals.
RsaThresholdDeal deal_rsa_threshold_with_key(Rng& rng, int n, int k,
                                             const RsaKeyPair& key,
                                             HashKind hash = HashKind::kSha256);

}  // namespace sintra::crypto
