#include "crypto/coin.hpp"

#include <functional>
#include <set>
#include <stdexcept>

#include "crypto/cost.hpp"
#include "crypto/shamir.hpp"
#include "crypto/work_pool.hpp"
#include "util/serde.hpp"

namespace sintra::crypto {

namespace {

struct ParsedCoinShare {
  BigInt gi;  // H2G(name)^{x_i}
  DleqProof proof;
};

ParsedCoinShare parse_coin_share(BytesView raw) {
  Reader r(raw);
  ParsedCoinShare out;
  out.gi = BigInt::read(r);
  out.proof = DleqProof::read(r);
  r.expect_end();
  return out;
}

}  // namespace

ThresholdCoin::ThresholdCoin(std::shared_ptr<const CoinPublic> pub, int index,
                             BigInt share, std::uint64_t prover_seed)
    : pub_(std::move(pub)),
      index_(index),
      share_(std::move(share)),
      prover_rng_(prover_seed),
      verify_rng_(prover_seed ^ 0xb47c4f5eedc011ULL) {
  pub_->group.hint_group_size(pub_->n);
}

// The generator and the per-party verification keys live for the whole
// deal, so they go through the group's precomputation cache; the coin
// base H2G(name) and the share g_i are fresh per coin and are not worth a
// table build (a comb table only pays for itself after several uses).
namespace {
constexpr DleqHints kCoinHints{.g1_long_lived = true,
                               .h1_long_lived = true,
                               .g2_long_lived = false,
                               .h2_long_lived = false};
}  // namespace

Bytes ThresholdCoin::release(BytesView name) {
  if (index_ < 0) throw std::logic_error("ThresholdCoin: verify-only handle");
  const OpScope ops("coin.release");
  const DlogGroup& grp = pub_->group;
  const BigInt base = grp.hash_to_group(name);
  const BigInt gi = grp.exp_reduced(base, share_);
  const DleqProof proof = dleq_prove(
      grp, grp.g(), pub_->verification[static_cast<std::size_t>(index_)],
      base, gi, share_, prover_rng_, kCoinHints);
  Writer w;
  gi.write(w);
  proof.write(w);
  return std::move(w).take();
}

bool ThresholdCoin::verify_share(BytesView name, int signer,
                                 BytesView share) const {
  if (signer < 0 || signer >= pub_->n) return false;
  const OpScope ops("coin.verify_share");
  ParsedCoinShare s;
  try {
    s = parse_coin_share(share);
  } catch (const SerdeError&) {
    return false;
  }
  const DlogGroup& grp = pub_->group;
  const BigInt base = grp.hash_to_group(name);
  return dleq_verify(grp, grp.g(),
                     pub_->verification[static_cast<std::size_t>(signer)],
                     base, s.gi, s.proof, kCoinHints);
}

Bytes ThresholdCoin::assemble(BytesView name,
                              const std::vector<std::pair<int, Bytes>>& shares,
                              std::size_t out_len) const {
  if (static_cast<int>(shares.size()) < pub_->k)
    throw std::invalid_argument("ThresholdCoin::assemble: need k shares");
  const OpScope ops("coin.assemble");
  const DlogGroup& grp = pub_->group;

  std::vector<int> indices;
  std::vector<BigInt> values;
  std::set<int> seen;
  for (const auto& [idx, raw] : shares) {
    if (static_cast<int>(indices.size()) == pub_->k) break;
    if (idx < 0 || idx >= pub_->n || !seen.insert(idx).second)
      throw std::invalid_argument(
          "ThresholdCoin::assemble: bad or duplicate signer index");
    indices.push_back(idx);
    values.push_back(parse_coin_share(raw).gi);
  }

  // Interpolate in the exponent: g0 = prod share_j ^ lambda_j, evaluated
  // as one simultaneous multi-exponentiation with memoized coefficients.
  const std::vector<BigInt> lambdas = lagrange_.coeffs_zero(indices, grp.q());
  std::vector<std::pair<BigInt, BigInt>> terms;
  terms.reserve(indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) {
    terms.emplace_back(values[j], lambdas[j]);
  }
  const BigInt g0 = grp.multi_exp(terms);

  // Expand H(block, name, g0) into out_len pseudo-random bytes.
  Bytes out;
  std::uint32_t block = 0;
  while (out.size() < out_len) {
    Writer w;
    w.u32(block++);
    w.bytes(name);
    g0.write(w);
    const Bytes d = hash_bytes(grp.hash_kind(), w.data());
    out.insert(out.end(), d.begin(), d.end());
  }
  out.resize(out_len);
  return out;
}

bool ThresholdCoin::assemble_bit(
    BytesView name, const std::vector<std::pair<int, Bytes>>& shares) const {
  return (assemble(name, shares, 1)[0] & 1) != 0;
}

std::optional<ThresholdCoin::AssembledCoin> ThresholdCoin::assemble_checked(
    BytesView name, const std::vector<std::pair<int, Bytes>>& shares,
    std::size_t out_len, WorkPool* wp) const {
  const DlogGroup& grp = pub_->group;
  const BigInt base = grp.hash_to_group(name);

  // Working pool: first-come order, one share per signer, blacklisted
  // signers skipped, unparseable shares blacklisted outright (shares
  // arrive over authenticated links, so garbage is the signer's doing).
  struct Candidate {
    const std::pair<int, Bytes>* share;
    ParsedCoinShare parsed;
  };
  std::vector<Candidate> pool;
  std::set<int> seen;
  pool.reserve(shares.size());
  for (const auto& share : shares) {
    const int idx = share.first;
    if (idx < 0 || idx >= pub_->n || blacklist_.contains(idx)) continue;
    if (seen.count(idx) != 0) continue;
    Candidate cand{&share, {}};
    try {
      cand.parsed = parse_coin_share(share.second);
    } catch (const SerdeError&) {
      blacklist_.add(idx);
      continue;
    }
    seen.insert(idx);
    pool.push_back(std::move(cand));
  }

  bool first_attempt = true;
  while (static_cast<int>(pool.size()) >= pub_->k) {
    const auto kk = static_cast<std::size_t>(pub_->k);
    std::vector<DleqStatement> stmts;
    stmts.reserve(kk);
    for (std::size_t j = 0; j < kk; ++j) {
      const auto signer = static_cast<std::size_t>(pool[j].share->first);
      stmts.push_back({grp.g(), pub_->verification[signer], base,
                       pool[j].parsed.gi, pool[j].parsed.proof});
    }
    bool ok;
    {
      const std::lock_guard lk(verify_mu_);
      ok = dleq_batch_verify(grp, stmts, verify_rng_, kCoinHints,
                             BatchMembership::kBatched);
    }
    if (ok) {
      if (first_attempt) count_optimistic_hit("coin");
      AssembledCoin out;
      out.used.reserve(kk);
      for (std::size_t j = 0; j < kk; ++j) out.used.push_back(*pool[j].share);
      out.value = assemble(name, out.used, out_len);
      return out;
    }

    first_attempt = false;
    count_fallback("coin");
    std::vector<std::size_t> bad;
    if (wp != nullptr && !wp->inline_mode() && stmts.size() > 1) {
      // Threaded fallback: one scalar verification per statement, fanned
      // out across cores.  Scalar verdicts are exactly what
      // dleq_find_invalid's singleton leaves produce, so the bad set (and
      // therefore the blacklist and the retry behaviour) is identical to
      // the serial bisection — only the wall-clock differs.
      std::vector<char> good(stmts.size(), 0);
      std::vector<std::function<void()>> jobs;
      jobs.reserve(stmts.size());
      for (std::size_t j = 0; j < stmts.size(); ++j) {
        jobs.push_back([&grp, &stmts, &good, j] {
          const DleqStatement& s = stmts[j];
          good[j] = dleq_verify(grp, s.g1, s.h1, s.g2, s.h2, s.proof,
                                kCoinHints)
                        ? 1
                        : 0;
        });
      }
      wp->run_parallel(jobs);
      count_parallel_verify("coin", stmts.size());
      for (std::size_t j = 0; j < stmts.size(); ++j) {
        if (good[j] == 0) bad.push_back(j);
      }
    } else {
      const std::lock_guard lk(verify_mu_);
      bad = dleq_find_invalid(grp, stmts, verify_rng_, kCoinHints);
    }
    if (bad.empty()) {
      // Cannot happen for an honestly-dealt coin (the batch never rejects
      // a set the scalar verifier accepts wholesale); bail out rather
      // than retry the same set forever.
      return std::nullopt;
    }
    for (const std::size_t bi : bad) blacklist_.add(pool[bi].share->first);
    for (auto it = bad.rbegin(); it != bad.rend(); ++it) {
      pool.erase(pool.begin() + static_cast<long>(*it));
    }
  }
  return std::nullopt;
}

std::optional<std::pair<bool, std::vector<std::pair<int, Bytes>>>>
ThresholdCoin::assemble_bit_checked(
    BytesView name, const std::vector<std::pair<int, Bytes>>& shares,
    WorkPool* pool) const {
  std::optional<AssembledCoin> coin = assemble_checked(name, shares, 1, pool);
  if (!coin) return std::nullopt;
  return std::make_pair((coin->value[0] & 1) != 0, std::move(coin->used));
}

std::vector<bool> ThresholdCoin::verify_shares_batch(
    BytesView name, const std::vector<std::pair<int, Bytes>>& shares) const {
  std::vector<bool> ok(shares.size(), false);
  const DlogGroup& grp = pub_->group;
  const BigInt base = grp.hash_to_group(name);

  std::vector<DleqStatement> stmts;
  std::vector<std::size_t> positions;  // statement -> input index
  stmts.reserve(shares.size());
  positions.reserve(shares.size());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const auto& [idx, raw] = shares[i];
    if (idx < 0 || idx >= pub_->n) continue;
    try {
      ParsedCoinShare p = parse_coin_share(raw);
      stmts.push_back({grp.g(),
                       pub_->verification[static_cast<std::size_t>(idx)], base,
                       std::move(p.gi), std::move(p.proof)});
      positions.push_back(i);
    } catch (const SerdeError&) {
      // stays flagged invalid
    }
  }

  const std::lock_guard lk(verify_mu_);
  if (dleq_batch_verify(grp, stmts, verify_rng_, kCoinHints,
                        BatchMembership::kIndividual)) {
    for (const std::size_t pos : positions) ok[pos] = true;
  } else {
    const std::vector<std::size_t> bad =
        dleq_find_invalid(grp, stmts, verify_rng_, kCoinHints);
    const std::set<std::size_t> bad_set(bad.begin(), bad.end());
    for (std::size_t j = 0; j < stmts.size(); ++j) {
      ok[positions[j]] = bad_set.count(j) == 0;
    }
  }
  return ok;
}

std::unique_ptr<ThresholdCoin> CoinDeal::make_party(int i) const {
  if (i < 0) {
    return std::make_unique<ThresholdCoin>(pub, -1, BigInt{0}, 0);
  }
  return std::make_unique<ThresholdCoin>(
      pub, i, shares[static_cast<std::size_t>(i)],
      0xc011 + static_cast<std::uint64_t>(i));
}

CoinDeal deal_coin(Rng& rng, int n, int k, const DlogGroup& group) {
  if (n < 1 || k < 1 || k > n)
    throw std::invalid_argument("deal_coin: need 1 <= k <= n");
  const BigInt x0 = group.random_exponent(rng);
  const SecretPolynomial poly(rng, x0, group.q(), k);

  auto pub = std::make_shared<CoinPublic>(CoinPublic{n, k, group, {}});
  CoinDeal deal;
  deal.shares = poly.shares(n);
  pub->verification.reserve(static_cast<std::size_t>(n));
  for (const BigInt& xi : deal.shares) {
    pub->verification.push_back(group.exp(group.g(), xi));
  }
  deal.pub = std::move(pub);
  return deal;
}

}  // namespace sintra::crypto
