#include "crypto/coin.hpp"

#include <set>
#include <stdexcept>

#include "crypto/cost.hpp"
#include "crypto/shamir.hpp"
#include "util/serde.hpp"

namespace sintra::crypto {

namespace {

struct ParsedCoinShare {
  BigInt gi;  // H2G(name)^{x_i}
  DleqProof proof;
};

ParsedCoinShare parse_coin_share(BytesView raw) {
  Reader r(raw);
  ParsedCoinShare out;
  out.gi = BigInt::read(r);
  out.proof = DleqProof::read(r);
  r.expect_end();
  return out;
}

}  // namespace

ThresholdCoin::ThresholdCoin(std::shared_ptr<const CoinPublic> pub, int index,
                             BigInt share, std::uint64_t prover_seed)
    : pub_(std::move(pub)),
      index_(index),
      share_(std::move(share)),
      prover_rng_(prover_seed) {}

// The generator and the per-party verification keys live for the whole
// deal, so they go through the group's precomputation cache; the coin
// base H2G(name) and the share g_i are fresh per coin and are not worth a
// table build (a comb table only pays for itself after several uses).
namespace {
constexpr DleqHints kCoinHints{.g1_long_lived = true,
                               .h1_long_lived = true,
                               .g2_long_lived = false,
                               .h2_long_lived = false};
}  // namespace

Bytes ThresholdCoin::release(BytesView name) {
  if (index_ < 0) throw std::logic_error("ThresholdCoin: verify-only handle");
  const OpScope ops("coin.release");
  const DlogGroup& grp = pub_->group;
  const BigInt base = grp.hash_to_group(name);
  const BigInt gi = grp.exp_reduced(base, share_);
  const DleqProof proof = dleq_prove(
      grp, grp.g(), pub_->verification[static_cast<std::size_t>(index_)],
      base, gi, share_, prover_rng_, kCoinHints);
  Writer w;
  gi.write(w);
  proof.write(w);
  return std::move(w).take();
}

bool ThresholdCoin::verify_share(BytesView name, int signer,
                                 BytesView share) const {
  if (signer < 0 || signer >= pub_->n) return false;
  const OpScope ops("coin.verify_share");
  ParsedCoinShare s;
  try {
    s = parse_coin_share(share);
  } catch (const SerdeError&) {
    return false;
  }
  const DlogGroup& grp = pub_->group;
  const BigInt base = grp.hash_to_group(name);
  return dleq_verify(grp, grp.g(),
                     pub_->verification[static_cast<std::size_t>(signer)],
                     base, s.gi, s.proof, kCoinHints);
}

Bytes ThresholdCoin::assemble(BytesView name,
                              const std::vector<std::pair<int, Bytes>>& shares,
                              std::size_t out_len) const {
  if (static_cast<int>(shares.size()) < pub_->k)
    throw std::invalid_argument("ThresholdCoin::assemble: need k shares");
  const OpScope ops("coin.assemble");
  const DlogGroup& grp = pub_->group;

  std::vector<int> indices;
  std::vector<BigInt> values;
  std::set<int> seen;
  for (const auto& [idx, raw] : shares) {
    if (static_cast<int>(indices.size()) == pub_->k) break;
    if (idx < 0 || idx >= pub_->n || !seen.insert(idx).second)
      throw std::invalid_argument(
          "ThresholdCoin::assemble: bad or duplicate signer index");
    indices.push_back(idx);
    values.push_back(parse_coin_share(raw).gi);
  }

  // Interpolate in the exponent: g0 = prod share_j ^ lambda_j, evaluated
  // as one simultaneous multi-exponentiation with memoized coefficients.
  const std::vector<BigInt> lambdas = lagrange_.coeffs_zero(indices, grp.q());
  std::vector<std::pair<BigInt, BigInt>> terms;
  terms.reserve(indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) {
    terms.emplace_back(values[j], lambdas[j]);
  }
  const BigInt g0 = grp.multi_exp(terms);

  // Expand H(block, name, g0) into out_len pseudo-random bytes.
  Bytes out;
  std::uint32_t block = 0;
  while (out.size() < out_len) {
    Writer w;
    w.u32(block++);
    w.bytes(name);
    g0.write(w);
    const Bytes d = hash_bytes(grp.hash_kind(), w.data());
    out.insert(out.end(), d.begin(), d.end());
  }
  out.resize(out_len);
  return out;
}

bool ThresholdCoin::assemble_bit(
    BytesView name, const std::vector<std::pair<int, Bytes>>& shares) const {
  return (assemble(name, shares, 1)[0] & 1) != 0;
}

std::unique_ptr<ThresholdCoin> CoinDeal::make_party(int i) const {
  if (i < 0) {
    return std::make_unique<ThresholdCoin>(pub, -1, BigInt{0}, 0);
  }
  return std::make_unique<ThresholdCoin>(
      pub, i, shares[static_cast<std::size_t>(i)],
      0xc011 + static_cast<std::uint64_t>(i));
}

CoinDeal deal_coin(Rng& rng, int n, int k, const DlogGroup& group) {
  if (n < 1 || k < 1 || k > n)
    throw std::invalid_argument("deal_coin: need 1 <= k <= n");
  const BigInt x0 = group.random_exponent(rng);
  const SecretPolynomial poly(rng, x0, group.q(), k);

  auto pub = std::make_shared<CoinPublic>(CoinPublic{n, k, group, {}});
  CoinDeal deal;
  deal.shares = poly.shares(n);
  pub->verification.reserve(static_cast<std::size_t>(n));
  for (const BigInt& xi : deal.shares) {
    pub->verification.push_back(group.exp(group.g(), xi));
  }
  deal.pub = std::move(pub);
  return deal;
}

}  // namespace sintra::crypto
