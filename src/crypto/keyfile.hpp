// Key-file serialization (paper §3: each server starts from
// "initialization data" produced by the trusted dealer).
//
// A deployment runs the dealer once, writes one key file per party, and
// ships each file over a trusted channel; a server loads its file and
// materialize()s the live schemes.  The format is the library's binary
// serde (length-prefixed, versioned), not tied to process endianness.
#pragma once

#include "crypto/dealer.hpp"
#include "util/serde.hpp"

namespace sintra::crypto {

/// Serializes one party's raw key material.
Bytes write_party_keys(const RawPartyKeys& raw);

/// Parses a key file; throws SerdeError on malformed or
/// version-incompatible input.
RawPartyKeys read_party_keys(BytesView data);

/// Serializes the group's public encryption key (distributable to
/// non-members, paper §3.4).
Bytes write_encryption_key(const Tdh2Public& pub);
Tdh2Public read_encryption_key(BytesView data);

}  // namespace sintra::crypto
