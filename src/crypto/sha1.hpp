// SHA-1 (FIPS 180-1).
//
// The paper's prototype uses SHA-1 both for HMAC link authentication and
// as the hash inside the signature / coin-tossing schemes; we implement it
// from scratch.  (SHA-1 is cryptographically broken today — this module
// exists for protocol fidelity; the schemes also run with SHA-256.)
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace sintra::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  Sha1();

  Sha1& update(BytesView data);
  /// Finalizes and returns the 20-byte digest; the object must not be
  /// updated afterwards.
  [[nodiscard]] Bytes digest();

  /// One-shot convenience.
  static Bytes hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

}  // namespace sintra::crypto
