// SHA-256 (FIPS 180-2), used as the default hash in this reproduction's
// signature, coin and encryption schemes (the paper used SHA-1; both are
// supported — see HashKind in the scheme constructors).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace sintra::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  Sha256& update(BytesView data);
  [[nodiscard]] Bytes digest();

  static Bytes hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

/// Which hash a scheme uses internally (paper: SHA-1; default here: SHA-256).
enum class HashKind { kSha1, kSha256 };

/// Dispatches to Sha1 or Sha256.
Bytes hash_bytes(HashKind kind, BytesView data);
std::size_t hash_digest_size(HashKind kind);

}  // namespace sintra::crypto
