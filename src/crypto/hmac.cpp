#include "crypto/hmac.hpp"

#include "crypto/sha1.hpp"

namespace sintra::crypto {

namespace {

template <typename Hash>
Bytes hmac_impl(BytesView key, BytesView data) {
  constexpr std::size_t kBlock = Hash::kBlockSize;
  Bytes k(key.begin(), key.end());
  if (k.size() > kBlock) k = Hash::hash(k);
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Hash inner;
  inner.update(ipad).update(data);
  Hash outer;
  outer.update(opad).update(inner.digest());
  return outer.digest();
}

}  // namespace

Bytes hmac(HashKind kind, BytesView key, BytesView data) {
  return kind == HashKind::kSha1 ? hmac_impl<Sha1>(key, data)
                                 : hmac_impl<Sha256>(key, data);
}

Bytes hmac_sha1(BytesView key, BytesView data) {
  return hmac_impl<Sha1>(key, data);
}

bool hmac_verify(HashKind kind, BytesView key, BytesView data, BytesView tag) {
  return ct_equal(hmac(kind, key, data), tag);
}

}  // namespace sintra::crypto
