// Threshold coin-tossing (Cachin–Kursawe–Shoup, PODC 2000).
//
// The randomization source of SINTRA's binary Byzantine agreement: an
// (n, k, t) dual-threshold pseudo-random function based on the
// Diffie–Hellman problem.  The dealer shares a secret exponent x0 over
// Z_q; the coin named by an arbitrary byte string C evaluates to
// F(C) = H(C, H2G(C)^{x0}), which no coalition of < k share-holders can
// predict, yet any k shares reconstruct — without interaction beyond
// exchanging the shares themselves.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "crypto/blacklist.hpp"
#include "crypto/group.hpp"
#include "crypto/shamir.hpp"
#include "util/bytes.hpp"

namespace sintra::crypto {

class WorkPool;

struct CoinPublic {
  int n = 0;
  int k = 0;
  DlogGroup group;
  std::vector<BigInt> verification;  // g^{x_i} per party
};

class ThresholdCoin {
 public:
  /// index = -1, share = 0 for a verify/assemble-only handle.
  ThresholdCoin(std::shared_ptr<const CoinPublic> pub, int index, BigInt share,
                std::uint64_t prover_seed);

  [[nodiscard]] int n() const { return pub_->n; }
  [[nodiscard]] int k() const { return pub_->k; }
  [[nodiscard]] int index() const { return index_; }

  /// This party's share of the coin named `name`: H2G(name)^{x_i} plus a
  /// DLEQ proof of correctness.
  [[nodiscard]] Bytes release(BytesView name);

  /// Verifies a share claimed by party `signer` for coin `name`.
  [[nodiscard]] bool verify_share(BytesView name, int signer,
                                  BytesView share) const;

  /// Assembles k shares into `out_len` pseudo-random bytes.  Throws
  /// std::invalid_argument on < k shares / duplicate signers.  Shares are
  /// interpolated as given: callers either verify them eagerly
  /// (verify_share) or use assemble_checked(), which verifies the chosen
  /// set with one batched DLEQ check.
  [[nodiscard]] Bytes assemble(BytesView name,
                               const std::vector<std::pair<int, Bytes>>& shares,
                               std::size_t out_len) const;

  /// Single pseudo-random bit (the common use in binary agreement).
  [[nodiscard]] bool assemble_bit(
      BytesView name, const std::vector<std::pair<int, Bytes>>& shares) const;

  /// A checked assembly: the coin output plus the k shares it came from.
  /// Every share of `used` passed DLEQ verification (batched), so the set
  /// is what callers must forward when justifying the coin value to other
  /// parties (binary agreement's pre-vote justifications).
  struct AssembledCoin {
    Bytes value;
    std::vector<std::pair<int, Bytes>> used;
  };

  /// Batch-first fast path: picks the first k plausible shares (skipping
  /// duplicates and locally blacklisted signers), verifies them with ONE
  /// random-linear-combination DLEQ check plus one batched membership
  /// check (dleq_batch_verify, BatchMembership::kBatched) and assembles.
  /// On batch failure the fallback isolates the bad shares by bisection,
  /// blacklists their signers on this handle, and retries with
  /// replacements.  Returns nullopt while fewer than k shares from
  /// distinct non-blacklisted signers are available.  A batched-membership
  /// false accept (probability <= 1/3 per attempt, see
  /// DlogGroup::is_member_batch) can only poison the coin *value* — a
  /// liveness event (one disagreeing coin costs an extra agreement round),
  /// never a safety one.  Thread-safe.
  /// When a threaded `pool` is given, the fallback verifies each chosen
  /// share's DLEQ proof individually via WorkPool::run_parallel (across
  /// cores) instead of serial bisection; the accepted/blacklisted sets
  /// are identical either way.
  [[nodiscard]] std::optional<AssembledCoin> assemble_checked(
      BytesView name, const std::vector<std::pair<int, Bytes>>& shares,
      std::size_t out_len, WorkPool* pool = nullptr) const;

  /// assemble_checked for the single-bit case.
  [[nodiscard]] std::optional<std::pair<bool, std::vector<std::pair<int, Bytes>>>>
  assemble_bit_checked(BytesView name,
                       const std::vector<std::pair<int, Bytes>>& shares,
                       WorkPool* pool = nullptr) const;

  /// Verifies many shares of one coin together: one random-linear-
  /// combination DLEQ check for the whole set (individual membership
  /// checks — this path judges *forwarded* justification sets, where a
  /// spurious accept must stay negligible).  Returns one flag per input
  /// share; on a batch mismatch the offenders are isolated by bisection,
  /// so flags agree with verify_share on every share.  Does not touch the
  /// blacklist: a bad forwarded share indicts the forwarder, not the
  /// signer whose index it claims.
  [[nodiscard]] std::vector<bool> verify_shares_batch(
      BytesView name, const std::vector<std::pair<int, Bytes>>& shares) const;

  /// True if `signer` was caught (by an assemble_checked fallback on this
  /// handle) submitting a bad share.
  [[nodiscard]] bool is_blacklisted(int signer) const {
    return blacklist_.contains(signer);
  }

 private:
  std::shared_ptr<const CoinPublic> pub_;
  int index_;
  BigInt share_;
  Rng prover_rng_;
  // Coin names repeat the same few index sets at assemble time.
  mutable LagrangeCache lagrange_;
  // Batch-verification randomness: deterministic per handle (seeded like
  // prover_rng_) so simulator runs stay reproducible, mutex-guarded so
  // checked assemblies may run on a crypto worker pool.
  mutable std::mutex verify_mu_;
  mutable Rng verify_rng_;
  mutable SignerBlacklist blacklist_;
};

struct CoinDeal {
  std::shared_ptr<const CoinPublic> pub;
  std::vector<BigInt> shares;

  [[nodiscard]] std::unique_ptr<ThresholdCoin> make_party(int i) const;
};

/// Deals a fresh (n, k) coin over the given group.
CoinDeal deal_coin(Rng& rng, int n, int k, const DlogGroup& group);

}  // namespace sintra::crypto
