// Threshold coin-tossing (Cachin–Kursawe–Shoup, PODC 2000).
//
// The randomization source of SINTRA's binary Byzantine agreement: an
// (n, k, t) dual-threshold pseudo-random function based on the
// Diffie–Hellman problem.  The dealer shares a secret exponent x0 over
// Z_q; the coin named by an arbitrary byte string C evaluates to
// F(C) = H(C, H2G(C)^{x0}), which no coalition of < k share-holders can
// predict, yet any k shares reconstruct — without interaction beyond
// exchanging the shares themselves.
#pragma once

#include <memory>
#include <vector>

#include "crypto/group.hpp"
#include "crypto/shamir.hpp"
#include "util/bytes.hpp"

namespace sintra::crypto {

struct CoinPublic {
  int n = 0;
  int k = 0;
  DlogGroup group;
  std::vector<BigInt> verification;  // g^{x_i} per party
};

class ThresholdCoin {
 public:
  /// index = -1, share = 0 for a verify/assemble-only handle.
  ThresholdCoin(std::shared_ptr<const CoinPublic> pub, int index, BigInt share,
                std::uint64_t prover_seed);

  [[nodiscard]] int n() const { return pub_->n; }
  [[nodiscard]] int k() const { return pub_->k; }
  [[nodiscard]] int index() const { return index_; }

  /// This party's share of the coin named `name`: H2G(name)^{x_i} plus a
  /// DLEQ proof of correctness.
  [[nodiscard]] Bytes release(BytesView name);

  /// Verifies a share claimed by party `signer` for coin `name`.
  [[nodiscard]] bool verify_share(BytesView name, int signer,
                                  BytesView share) const;

  /// Assembles k verified shares into `out_len` pseudo-random bytes.
  /// Throws std::invalid_argument on < k shares / duplicate signers.
  [[nodiscard]] Bytes assemble(BytesView name,
                               const std::vector<std::pair<int, Bytes>>& shares,
                               std::size_t out_len) const;

  /// Single pseudo-random bit (the common use in binary agreement).
  [[nodiscard]] bool assemble_bit(
      BytesView name, const std::vector<std::pair<int, Bytes>>& shares) const;

 private:
  std::shared_ptr<const CoinPublic> pub_;
  int index_;
  BigInt share_;
  Rng prover_rng_;
  // Coin names repeat the same few index sets at assemble time.
  mutable LagrangeCache lagrange_;
};

struct CoinDeal {
  std::shared_ptr<const CoinPublic> pub;
  std::vector<BigInt> shares;

  [[nodiscard]] std::unique_ptr<ThresholdCoin> make_party(int i) const;
};

/// Deals a fresh (n, k) coin over the given group.
CoinDeal deal_coin(Rng& rng, int n, int k, const DlogGroup& group);

}  // namespace sintra::crypto
