// AES-128 (FIPS 197) with CTR mode.
//
// Substitution note (see DESIGN.md): the paper's prototype used the MARS
// block cipher with 128-bit keys for bulk encryption inside the threshold
// cryptosystem.  MARS and AES(Rijndael) were both AES-competition
// finalists with the same block/key sizes; any IND-CPA 128-bit block
// cipher fills this role, so we implement AES-128 from scratch instead.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace sintra::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;

  /// key must be exactly 16 bytes; throws std::invalid_argument otherwise.
  explicit Aes128(BytesView key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(std::uint8_t block[kBlockSize]) const;

  /// CTR-mode keystream XOR: encrypts or decrypts (same operation).
  /// `nonce` must be 16 bytes and acts as the initial counter block.
  [[nodiscard]] Bytes ctr_crypt(BytesView nonce, BytesView data) const;

 private:
  std::array<std::uint8_t, 176> round_keys_;  // 11 round keys * 16 bytes
};

}  // namespace sintra::crypto
