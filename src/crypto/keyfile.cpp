#include "crypto/keyfile.hpp"

namespace sintra::crypto {

namespace {

constexpr std::uint32_t kKeyFileVersion = 1;

void write_rsa_keypair(Writer& w, const RsaKeyPair& kp) {
  kp.pub.write(w);
  kp.d.write(w);
  kp.p.write(w);
  kp.q.write(w);
  kp.dp.write(w);
  kp.dq.write(w);
  kp.qinv.write(w);
}

RsaKeyPair read_rsa_keypair(Reader& r) {
  RsaKeyPair kp;
  kp.pub = RsaPublicKey::read(r);
  kp.d = BigInt::read(r);
  kp.p = BigInt::read(r);
  kp.q = BigInt::read(r);
  kp.dp = BigInt::read(r);
  kp.dq = BigInt::read(r);
  kp.qinv = BigInt::read(r);
  return kp;
}

void write_bigints(Writer& w, const std::vector<BigInt>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const BigInt& x : v) x.write(w);
}

std::vector<BigInt> read_bigints(Reader& r) {
  const std::uint32_t count = r.u32();
  if (count > 1u << 16) throw SerdeError("keyfile: vector too large");
  std::vector<BigInt> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(BigInt::read(r));
  return out;
}

void write_threshold(Writer& w, const RawRsaThreshold& th) {
  w.u32(static_cast<std::uint32_t>(th.pub.n));
  w.u32(static_cast<std::uint32_t>(th.pub.k));
  th.pub.modulus.write(w);
  th.pub.e.write(w);
  th.pub.v.write(w);
  write_bigints(w, th.pub.vi);
  th.pub.delta.write(w);
  w.u8(th.pub.hash == HashKind::kSha1 ? 0 : 1);
  th.share.write(w);
}

RawRsaThreshold read_threshold(Reader& r) {
  RawRsaThreshold th;
  th.pub.n = static_cast<int>(r.u32());
  th.pub.k = static_cast<int>(r.u32());
  th.pub.modulus = BigInt::read(r);
  th.pub.e = BigInt::read(r);
  th.pub.v = BigInt::read(r);
  th.pub.vi = read_bigints(r);
  th.pub.delta = BigInt::read(r);
  th.pub.hash = r.u8() == 0 ? HashKind::kSha1 : HashKind::kSha256;
  th.share = BigInt::read(r);
  return th;
}

}  // namespace

Bytes write_party_keys(const RawPartyKeys& raw) {
  Writer w;
  w.str("sintra-keys");
  w.u32(kKeyFileVersion);
  w.u32(static_cast<std::uint32_t>(raw.index));
  w.u32(static_cast<std::uint32_t>(raw.n));
  w.u32(static_cast<std::uint32_t>(raw.t));
  w.u8(raw.hash == HashKind::kSha1 ? 0 : 1);
  w.u8(raw.sig_impl == SigImpl::kThresholdRsa ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(raw.k_broadcast));
  w.u32(static_cast<std::uint32_t>(raw.k_agreement));

  w.u32(static_cast<std::uint32_t>(raw.link_keys.size()));
  for (const Bytes& k : raw.link_keys) w.bytes(k);

  write_rsa_keypair(w, raw.own_rsa);
  w.u32(static_cast<std::uint32_t>(raw.all_rsa_publics.size()));
  for (const RsaPublicKey& pk : raw.all_rsa_publics) pk.write(w);

  w.u8(raw.threshold_broadcast.has_value() ? 1 : 0);
  if (raw.threshold_broadcast) write_threshold(w, *raw.threshold_broadcast);
  w.u8(raw.threshold_agreement.has_value() ? 1 : 0);
  if (raw.threshold_agreement) write_threshold(w, *raw.threshold_agreement);

  raw.coin_p.write(w);
  raw.coin_q.write(w);
  raw.coin_g.write(w);
  write_bigints(w, raw.coin_verification);
  raw.coin_share.write(w);
  w.u32(static_cast<std::uint32_t>(raw.coin_k));

  raw.tdh2_h.write(w);
  raw.tdh2_gbar.write(w);
  write_bigints(w, raw.tdh2_verification);
  raw.tdh2_share.write(w);
  w.u32(static_cast<std::uint32_t>(raw.tdh2_k));
  return std::move(w).take();
}

RawPartyKeys read_party_keys(BytesView data) {
  Reader r(data);
  if (r.str() != "sintra-keys") throw SerdeError("keyfile: bad magic");
  if (r.u32() != kKeyFileVersion) throw SerdeError("keyfile: bad version");
  RawPartyKeys raw;
  raw.index = static_cast<int>(r.u32());
  raw.n = static_cast<int>(r.u32());
  raw.t = static_cast<int>(r.u32());
  raw.hash = r.u8() == 0 ? HashKind::kSha1 : HashKind::kSha256;
  raw.sig_impl = r.u8() == 1 ? SigImpl::kThresholdRsa : SigImpl::kMultiSig;
  raw.k_broadcast = static_cast<int>(r.u32());
  raw.k_agreement = static_cast<int>(r.u32());
  if (raw.n < 1 || raw.n > 1 << 16 || raw.index < 0 || raw.index >= raw.n)
    throw SerdeError("keyfile: implausible group parameters");

  const std::uint32_t links = r.u32();
  if (links != static_cast<std::uint32_t>(raw.n))
    throw SerdeError("keyfile: link key count mismatch");
  for (std::uint32_t i = 0; i < links; ++i) raw.link_keys.push_back(r.bytes());

  raw.own_rsa = read_rsa_keypair(r);
  const std::uint32_t pubs = r.u32();
  if (pubs != static_cast<std::uint32_t>(raw.n))
    throw SerdeError("keyfile: public key count mismatch");
  for (std::uint32_t i = 0; i < pubs; ++i) {
    raw.all_rsa_publics.push_back(RsaPublicKey::read(r));
  }

  if (r.u8() != 0) raw.threshold_broadcast = read_threshold(r);
  if (r.u8() != 0) raw.threshold_agreement = read_threshold(r);

  raw.coin_p = BigInt::read(r);
  raw.coin_q = BigInt::read(r);
  raw.coin_g = BigInt::read(r);
  raw.coin_verification = read_bigints(r);
  raw.coin_share = BigInt::read(r);
  raw.coin_k = static_cast<int>(r.u32());

  raw.tdh2_h = BigInt::read(r);
  raw.tdh2_gbar = BigInt::read(r);
  raw.tdh2_verification = read_bigints(r);
  raw.tdh2_share = BigInt::read(r);
  raw.tdh2_k = static_cast<int>(r.u32());
  r.expect_end();
  return raw;
}

Bytes write_encryption_key(const Tdh2Public& pub) {
  Writer w;
  w.str("sintra-enckey");
  w.u32(kKeyFileVersion);
  w.u32(static_cast<std::uint32_t>(pub.n));
  w.u32(static_cast<std::uint32_t>(pub.k));
  pub.group.write(w);
  pub.h.write(w);
  pub.g_bar.write(w);
  write_bigints(w, pub.verification);
  return std::move(w).take();
}

Tdh2Public read_encryption_key(BytesView data) {
  Reader r(data);
  if (r.str() != "sintra-enckey") throw SerdeError("enckey: bad magic");
  if (r.u32() != kKeyFileVersion) throw SerdeError("enckey: bad version");
  const int n = static_cast<int>(r.u32());
  const int k = static_cast<int>(r.u32());
  DlogGroup group = DlogGroup::read(r);
  BigInt h = BigInt::read(r);
  BigInt gbar = BigInt::read(r);
  std::vector<BigInt> verification = read_bigints(r);
  r.expect_end();
  return Tdh2Public{n, k, std::move(group), std::move(h), std::move(gbar),
                    std::move(verification)};
}

}  // namespace sintra::crypto
