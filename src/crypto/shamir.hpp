// Shamir polynomial secret sharing and Lagrange interpolation.
//
// Two flavours are needed by SINTRA's threshold schemes:
//  - over the prime field Z_q (threshold coin, TDH2): interpolation uses
//    modular inverses;
//  - over Z_m with secret composite m = p'q' (Shoup threshold RSA):
//    inverses may not exist, so recombination uses *integer* Lagrange
//    coefficients scaled by Δ = n! (Shoup's trick), applied in the
//    exponent by the signature scheme.
//
// Party indices are 1-based in the polynomial (share of party i is f(i+1)
// would invite off-by-ones; here share_for(i) evaluates f at x = i+1 for
// 0-based party index i, and the interpolation helpers take the same
// 0-based indices).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bignum/bigint.hpp"
#include "util/rng.hpp"

namespace sintra::crypto {

using bignum::BigInt;

/// A degree-(k-1) polynomial with coefficients mod m and f(0) = secret.
class SecretPolynomial {
 public:
  SecretPolynomial(Rng& rng, const BigInt& secret, const BigInt& modulus,
                   int k);

  /// Share for 0-based party index i: f(i+1) mod m.
  [[nodiscard]] BigInt share_for(int party_index) const;

  /// All n shares.
  [[nodiscard]] std::vector<BigInt> shares(int n) const;

  [[nodiscard]] const std::vector<BigInt>& coefficients() const {
    return coeffs_;
  }

 private:
  BigInt modulus_;
  std::vector<BigInt> coeffs_;  // coeffs_[0] == secret
};

/// One recombination point: 0-based party index and its share value.
struct SharePoint {
  int index;
  BigInt value;
};

/// Lagrange interpolation of f(0) over the prime field Z_q.
/// Indices must be distinct; throws std::invalid_argument otherwise.
BigInt lagrange_zero(const std::vector<SharePoint>& points, const BigInt& q);

/// Lagrange coefficient at zero, in Z_q, for the point with 0-based index
/// `j` among `indices`:  prod_{j' != j} x_{j'} / (x_{j'} - x_j) mod q
/// with x_i = index_i + 1.
BigInt lagrange_coeff_zero(const std::vector<int>& indices, int j,
                           const BigInt& q);

/// n! as a BigInt (Shoup's Δ).
BigInt factorial(int n);

/// Integer Lagrange coefficient Δ · λ_{0,j} for Shoup recombination:
/// an exact (possibly negative) integer when Δ = n!.
/// `indices` are 0-based party indices, `j` selects the point.
BigInt integer_lagrange_coeff(const BigInt& delta,
                              const std::vector<int>& indices, int j);

/// Memo for full coefficient vectors, keyed by the index *sequence* (and
/// the modulus or Δ).  Combiners see index vectors that grow in share
/// arrival order — round r+1's set usually extends a prefix of round r's —
/// so besides exact hits the cache supports *incremental extension*: when
/// the requested sequence extends a cached prefix, the new coefficients
/// are derived from the cached ones one point at a time instead of being
/// recomputed over all k points.
///
///   field (Z_q):   λ'_j = λ_j · x · (x − x_j)^{-1}   (one Montgomery
///                  batch inversion per appended point: 1 inverse + O(k)
///                  multiplies, vs k inverses + O(k²) from scratch);
///   integer (Δ):   c'_j = c_j · x / (x − x_j), an *exact* division —
///                  both c_j and c'_j are integers by Shoup's Δ = n!
///                  argument, which holds for every subset of {1..n},
///                  so prefixes of any length are valid cache entries.
///
/// Both derivations produce bit-identical values to the from-scratch
/// computation (they are the same rational number, canonically reduced),
/// so cached, extended and recomputed paths are interchangeable.
/// Eviction is least-recently-used (the previous clear-all policy
/// thrashed at n=31 where C(n, k) index sets far exceed the capacity).
/// Lagrange math is plain BigInt arithmetic and therefore invisible to
/// the Montgomery work counter: the cache changes wall-clock time, never
/// simulated time, so it needs no epoch handling (see crypto/cost.hpp).
class LagrangeCache {
 public:
  /// All coefficients lagrange_coeff_zero(indices, j, q), j = 0..size-1.
  std::vector<BigInt> coeffs_zero(const std::vector<int>& indices,
                                  const BigInt& q);
  /// All coefficients integer_lagrange_coeff(delta, indices, j).
  std::vector<BigInt> integer_coeffs(const BigInt& delta,
                                     const std::vector<int>& indices);

  /// Wall-clock accounting (for benches/tests; not simulated time).
  struct Stats {
    std::uint64_t hits = 0;           // exact cache hits
    std::uint64_t prefix_extends = 0; // served by extending a cached prefix
    std::uint64_t full_computes = 0;  // computed from scratch
  };
  [[nodiscard]] Stats stats();

 private:
  static constexpr std::size_t kMaxEntries = 256;

  struct Entry {
    std::vector<BigInt> coeffs;
    std::uint64_t last_use = 0;
  };

  /// Shared lookup: exact hit, longest-prefix extension, or full compute
  /// via `compute` / per-point `extend`.  Caller holds no lock.
  std::vector<BigInt> lookup(
      const char* tag, const BigInt& scale, const std::vector<int>& indices,
      const std::function<std::vector<BigInt>()>& compute,
      const std::function<bool(std::vector<BigInt>&, std::size_t)>& extend);

  void insert_locked(std::string key, std::vector<BigInt> coeffs);

  std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t use_clock_ = 0;
  Stats stats_;
};

}  // namespace sintra::crypto
