// Shamir polynomial secret sharing and Lagrange interpolation.
//
// Two flavours are needed by SINTRA's threshold schemes:
//  - over the prime field Z_q (threshold coin, TDH2): interpolation uses
//    modular inverses;
//  - over Z_m with secret composite m = p'q' (Shoup threshold RSA):
//    inverses may not exist, so recombination uses *integer* Lagrange
//    coefficients scaled by Δ = n! (Shoup's trick), applied in the
//    exponent by the signature scheme.
//
// Party indices are 1-based in the polynomial (share of party i is f(i+1)
// would invite off-by-ones; here share_for(i) evaluates f at x = i+1 for
// 0-based party index i, and the interpolation helpers take the same
// 0-based indices).
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bignum/bigint.hpp"
#include "util/rng.hpp"

namespace sintra::crypto {

using bignum::BigInt;

/// A degree-(k-1) polynomial with coefficients mod m and f(0) = secret.
class SecretPolynomial {
 public:
  SecretPolynomial(Rng& rng, const BigInt& secret, const BigInt& modulus,
                   int k);

  /// Share for 0-based party index i: f(i+1) mod m.
  [[nodiscard]] BigInt share_for(int party_index) const;

  /// All n shares.
  [[nodiscard]] std::vector<BigInt> shares(int n) const;

  [[nodiscard]] const std::vector<BigInt>& coefficients() const {
    return coeffs_;
  }

 private:
  BigInt modulus_;
  std::vector<BigInt> coeffs_;  // coeffs_[0] == secret
};

/// One recombination point: 0-based party index and its share value.
struct SharePoint {
  int index;
  BigInt value;
};

/// Lagrange interpolation of f(0) over the prime field Z_q.
/// Indices must be distinct; throws std::invalid_argument otherwise.
BigInt lagrange_zero(const std::vector<SharePoint>& points, const BigInt& q);

/// Lagrange coefficient at zero, in Z_q, for the point with 0-based index
/// `j` among `indices`:  prod_{j' != j} x_{j'} / (x_{j'} - x_j) mod q
/// with x_i = index_i + 1.
BigInt lagrange_coeff_zero(const std::vector<int>& indices, int j,
                           const BigInt& q);

/// n! as a BigInt (Shoup's Δ).
BigInt factorial(int n);

/// Integer Lagrange coefficient Δ · λ_{0,j} for Shoup recombination:
/// an exact (possibly negative) integer when Δ = n!.
/// `indices` are 0-based party indices, `j` selects the point.
BigInt integer_lagrange_coeff(const BigInt& delta,
                              const std::vector<int>& indices, int j);

/// Memo for full coefficient vectors, keyed by the index set (and the
/// modulus or Δ).  Combiners see the same small family of index sets over
/// and over — with n parties and threshold t+1 there are only C(n, t+1)
/// of them — so each scheme keeps one of these as a mutable member.
/// Lagrange math is plain BigInt arithmetic and therefore invisible to
/// the Montgomery work counter: the cache changes wall-clock time, never
/// simulated time, so it needs no epoch handling (see crypto/cost.hpp).
class LagrangeCache {
 public:
  /// All coefficients lagrange_coeff_zero(indices, j, q), j = 0..size-1.
  std::vector<BigInt> coeffs_zero(const std::vector<int>& indices,
                                  const BigInt& q);
  /// All coefficients integer_lagrange_coeff(delta, indices, j).
  std::vector<BigInt> integer_coeffs(const BigInt& delta,
                                     const std::vector<int>& indices);

 private:
  static constexpr std::size_t kMaxEntries = 32;

  std::mutex mu_;
  std::unordered_map<std::string, std::vector<BigInt>> entries_;
};

}  // namespace sintra::crypto
