#include "crypto/group.hpp"

#include <stdexcept>

namespace sintra::crypto {

DlogGroup::DlogGroup(BigInt p, BigInt q, BigInt g, HashKind hash)
    : p_(std::move(p)),
      q_(std::move(q)),
      g_(std::move(g)),
      cofactor_exp_((p_ - BigInt{1}) / q_),
      mont_(p_),
      hash_(hash) {
  if ((p_ - BigInt{1}) % q_ != BigInt{0})
    throw std::invalid_argument("DlogGroup: q does not divide p-1");
  if (!is_member(g_))
    throw std::invalid_argument("DlogGroup: g not an order-q element");
}

DlogGroup DlogGroup::generate(Rng& rng, int p_bits, int q_bits,
                              HashKind hash) {
  const bignum::SchnorrGroup grp =
      bignum::generate_schnorr_group(rng, p_bits, q_bits);
  return DlogGroup(grp.p, grp.q, grp.g, hash);
}

BigInt DlogGroup::exp(const BigInt& base, const BigInt& e) const {
  return mont_.pow(base, e.mod(q_));
}

BigInt DlogGroup::mul(const BigInt& a, const BigInt& b) const {
  return mont_.mul(a, b);
}

BigInt DlogGroup::inv(const BigInt& a) const { return a.mod_inverse(p_); }

bool DlogGroup::is_member(const BigInt& y) const {
  if (y <= BigInt{1} || y >= p_) return false;
  return mont_.pow(y, q_).is_one();
}

BigInt DlogGroup::hash_to_group(BytesView name) const {
  const std::size_t pbytes = static_cast<std::size_t>(p_.bit_length() + 7) / 8;
  for (std::uint32_t ctr = 0;; ++ctr) {
    // Expand H(ctr || i || name) until we have pbytes + 8 bytes, then
    // reduce mod p and project into the subgroup.
    Bytes material;
    std::uint32_t block = 0;
    while (material.size() < pbytes + 8) {
      Writer w;
      w.u32(ctr);
      w.u32(block++);
      w.raw(name);
      const Bytes d = hash_bytes(hash_, w.data());
      material.insert(material.end(), d.begin(), d.end());
    }
    const BigInt v = BigInt::from_bytes(material).mod(p_);
    const BigInt candidate = mont_.pow(v, cofactor_exp_);
    if (!candidate.is_one() && !candidate.is_zero()) return candidate;
  }
}

BigInt DlogGroup::random_exponent(Rng& rng) const {
  return BigInt::random_below(rng, q_);
}

BigInt DlogGroup::hash_to_exponent(BytesView data) const {
  const std::size_t qbytes = static_cast<std::size_t>(q_.bit_length() + 7) / 8;
  Bytes material;
  std::uint32_t block = 0;
  while (material.size() < qbytes + 8) {
    Writer w;
    w.u32(block++);
    w.raw(data);
    const Bytes d = hash_bytes(hash_, w.data());
    material.insert(material.end(), d.begin(), d.end());
  }
  return BigInt::from_bytes(material).mod(q_);
}

void DlogGroup::write(Writer& w) const {
  p_.write(w);
  q_.write(w);
  g_.write(w);
  w.u8(hash_ == HashKind::kSha1 ? 0 : 1);
}

DlogGroup DlogGroup::read(Reader& r) {
  BigInt p = BigInt::read(r);
  BigInt q = BigInt::read(r);
  BigInt g = BigInt::read(r);
  const HashKind hash = r.u8() == 0 ? HashKind::kSha1 : HashKind::kSha256;
  return DlogGroup(std::move(p), std::move(q), std::move(g), hash);
}

void DleqProof::write(Writer& w) const {
  c.write(w);
  z.write(w);
}

DleqProof DleqProof::read(Reader& r) {
  DleqProof out;
  out.c = BigInt::read(r);
  out.z = BigInt::read(r);
  return out;
}

namespace {
BigInt challenge(const DlogGroup& grp, const BigInt& g1, const BigInt& h1,
                 const BigInt& g2, const BigInt& h2, const BigInt& a1,
                 const BigInt& a2) {
  Writer w;
  g1.write(w);
  h1.write(w);
  g2.write(w);
  h2.write(w);
  a1.write(w);
  a2.write(w);
  return grp.hash_to_exponent(w.data());
}
}  // namespace

DleqProof dleq_prove(const DlogGroup& grp, const BigInt& g1, const BigInt& h1,
                     const BigInt& g2, const BigInt& h2, const BigInt& x,
                     Rng& rng) {
  const BigInt r = grp.random_exponent(rng);
  const BigInt a1 = grp.exp(g1, r);
  const BigInt a2 = grp.exp(g2, r);
  const BigInt c = challenge(grp, g1, h1, g2, h2, a1, a2);
  const BigInt z = (r + c * x).mod(grp.q());
  return {c, z};
}

bool dleq_verify(const DlogGroup& grp, const BigInt& g1, const BigInt& h1,
                 const BigInt& g2, const BigInt& h2, const DleqProof& proof) {
  if (proof.c.is_negative() || proof.z.is_negative() || proof.c >= grp.q() ||
      proof.z >= grp.q()) {
    return false;
  }
  if (!grp.is_member(h1) || !grp.is_member(h2)) return false;
  // a_i = g_i^z * h_i^{-c}
  const BigInt a1 =
      grp.mul(grp.exp(g1, proof.z), grp.inv(grp.exp(h1, proof.c)));
  const BigInt a2 =
      grp.mul(grp.exp(g2, proof.z), grp.inv(grp.exp(h2, proof.c)));
  return challenge(grp, g1, h1, g2, h2, a1, a2) == proof.c;
}

}  // namespace sintra::crypto
