#include "crypto/group.hpp"

#include <cassert>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "crypto/cost.hpp"

namespace sintra::crypto {

namespace {

/// Map key for a group element: its minimal big-endian magnitude.  Callers
/// only reach the cache after range checks, so values are non-negative.
std::string element_key(const BigInt& y) {
  const Bytes b = y.to_bytes();
  return {b.begin(), b.end()};
}

}  // namespace

/// Per-group precomputation cache.  Everything in here is derived state:
/// dropping it at any moment is only a performance (and work-accounting)
/// event, never a correctness one.  The epoch stamp ties amortization to
/// one simulator run — see cost.hpp.
struct DlogGroup::FastCache {
  struct Entry {
    bignum::FixedBaseTable table;  // may be !valid() if only membership known
    int member = -1;               // -1 unknown, 0 non-member, 1 member
    std::uint64_t last_use = 0;
  };

  static constexpr std::size_t kMaxElements = 96;
  static constexpr std::size_t kMaxNamed = 64;

  std::mutex mu;
  std::uint64_t epoch = 0;  // 0 never matches a live epoch
  std::uint64_t tick = 0;
  std::unordered_map<std::string, Entry> elements;
  std::unordered_map<std::string, BigInt> named;  // hash_to_group memo

  /// Finds or inserts the entry for `key`, evicting the least recently
  /// used entry when full.  References stay valid across later inserts
  /// (unordered_map nodes are stable), and the eviction victim can never
  /// be a just-touched entry, so two live touch() references are safe.
  Entry& touch(std::string key) {
    auto it = elements.find(key);
    if (it == elements.end()) {
      if (elements.size() >= kMaxElements) {
        auto victim = elements.begin();
        for (auto j = elements.begin(); j != elements.end(); ++j) {
          if (j->second.last_use < victim->second.last_use) victim = j;
        }
        elements.erase(victim);
      }
      it = elements.emplace(std::move(key), Entry{}).first;
    }
    it->second.last_use = ++tick;
    return it->second;
  }
};

DlogGroup::DlogGroup(BigInt p, BigInt q, BigInt g, HashKind hash)
    : p_(std::move(p)),
      q_(std::move(q)),
      g_(std::move(g)),
      cofactor_exp_((p_ - BigInt{1}) / q_),
      mont_(p_),
      hash_(hash),
      cache_(std::make_unique<FastCache>()) {
  if ((p_ - BigInt{1}) % q_ != BigInt{0})
    throw std::invalid_argument("DlogGroup: q does not divide p-1");
  if (!is_member(g_))
    throw std::invalid_argument("DlogGroup: g not an order-q element");
}

DlogGroup::DlogGroup(const DlogGroup& other)
    : p_(other.p_),
      q_(other.q_),
      g_(other.g_),
      cofactor_exp_(other.cofactor_exp_),
      mont_(other.mont_),
      hash_(other.hash_),
      cache_(std::make_unique<FastCache>()) {}

DlogGroup& DlogGroup::operator=(const DlogGroup& other) {
  if (this != &other) {
    p_ = other.p_;
    q_ = other.q_;
    g_ = other.g_;
    cofactor_exp_ = other.cofactor_exp_;
    mont_ = other.mont_;
    hash_ = other.hash_;
    cache_ = std::make_unique<FastCache>();
  }
  return *this;
}

DlogGroup::DlogGroup(DlogGroup&&) noexcept = default;
DlogGroup& DlogGroup::operator=(DlogGroup&&) noexcept = default;
DlogGroup::~DlogGroup() = default;

DlogGroup DlogGroup::generate(Rng& rng, int p_bits, int q_bits,
                              HashKind hash) {
  const bignum::SchnorrGroup grp =
      bignum::generate_schnorr_group(rng, p_bits, q_bits);
  return DlogGroup(grp.p, grp.q, grp.g, hash);
}

void DlogGroup::locked_refresh_epoch() const {
  const std::uint64_t now = cache_epoch();
  if (cache_->epoch != now) {
    cache_->elements.clear();
    cache_->named.clear();
    cache_->epoch = now;
  }
}

const bignum::FixedBaseTable& DlogGroup::locked_table(
    const BigInt& base) const {
  FastCache::Entry& entry = cache_->touch(element_key(base));
  if (!entry.table.valid()) {
    entry.table = mont_.precompute(base, q_.bit_length());
  }
  return entry.table;
}

BigInt DlogGroup::exp(const BigInt& base, const BigInt& e) const {
  if (!e.is_negative() && e < q_) return mont_.pow(base, e);
  return mont_.pow(base, e.mod(q_));
}

BigInt DlogGroup::exp_reduced(const BigInt& base, const BigInt& e) const {
  assert(!e.is_negative() && e < q_);
  return mont_.pow(base, e);
}

BigInt DlogGroup::exp_cached(const BigInt& base, const BigInt& e) const {
  const std::lock_guard lk(cache_->mu);
  locked_refresh_epoch();
  const bignum::FixedBaseTable& t = locked_table(base);
  if (!e.is_negative() && e < q_) return mont_.pow(t, e);
  return mont_.pow(t, e.mod(q_));
}

BigInt DlogGroup::dual_exp(const BigInt& b1, const BigInt& e1, bool cached1,
                           const BigInt& b2, const BigInt& e2,
                           bool cached2) const {
  const BigInt r1 = (!e1.is_negative() && e1 < q_) ? e1 : e1.mod(q_);
  const BigInt r2 = (!e2.is_negative() && e2 < q_) ? e2 : e2.mod(q_);
  if (!cached1 && !cached2) return mont_.mul_pow(b1, r1, b2, r2);
  const std::lock_guard lk(cache_->mu);
  locked_refresh_epoch();
  if (cached1 && cached2)
    return mont_.mul_pow(locked_table(b1), r1, locked_table(b2), r2);
  if (cached1) return mont_.mul_pow(locked_table(b1), r1, b2, r2);
  return mont_.mul_pow(locked_table(b2), r2, b1, r1);
}

BigInt DlogGroup::dual_exp_neg(const BigInt& b1, const BigInt& e1,
                               bool cached1, const BigInt& b2,
                               const BigInt& e2, bool cached2) const {
  BigInt r2 = e2.mod(q_);
  if (!r2.is_zero()) r2 = q_ - r2;
  return dual_exp(b1, e1, cached1, b2, r2, cached2);
}

BigInt DlogGroup::multi_exp(
    const std::vector<std::pair<BigInt, BigInt>>& terms) const {
  std::vector<std::pair<BigInt, BigInt>> reduced;
  reduced.reserve(terms.size());
  for (const auto& [b, e] : terms) {
    reduced.emplace_back(b, (!e.is_negative() && e < q_) ? e : e.mod(q_));
  }
  return mont_.multi_pow(reduced);
}

BigInt DlogGroup::mul(const BigInt& a, const BigInt& b) const {
  return mont_.mul(a, b);
}

BigInt DlogGroup::inv(const BigInt& a) const { return a.mod_inverse(p_); }

bool DlogGroup::is_member(const BigInt& y) const {
  if (y <= BigInt{1} || y >= p_) return false;
  return mont_.pow(y, q_).is_one();
}

bool DlogGroup::is_member_cached(const BigInt& y) const {
  if (y <= BigInt{1} || y >= p_) return false;
  const std::lock_guard lk(cache_->mu);
  locked_refresh_epoch();
  FastCache::Entry& entry = cache_->touch(element_key(y));
  if (entry.member < 0) {
    entry.member = mont_.pow(y, q_).is_one() ? 1 : 0;
  }
  return entry.member == 1;
}

BigInt DlogGroup::hash_to_group(BytesView name) const {
  std::string key(name.begin(), name.end());
  const std::lock_guard lk(cache_->mu);
  locked_refresh_epoch();
  auto it = cache_->named.find(key);
  if (it == cache_->named.end()) {
    if (cache_->named.size() >= FastCache::kMaxNamed) cache_->named.clear();
    it = cache_->named.emplace(std::move(key), hash_to_group_uncached(name))
             .first;
  }
  return it->second;
}

BigInt DlogGroup::hash_to_group_uncached(BytesView name) const {
  const std::size_t pbytes = static_cast<std::size_t>(p_.bit_length() + 7) / 8;
  for (std::uint32_t ctr = 0;; ++ctr) {
    // Expand H(ctr || i || name) until we have pbytes + 8 bytes, then
    // reduce mod p and project into the subgroup.
    Bytes material;
    std::uint32_t block = 0;
    while (material.size() < pbytes + 8) {
      Writer w;
      w.u32(ctr);
      w.u32(block++);
      w.raw(name);
      const Bytes d = hash_bytes(hash_, w.data());
      material.insert(material.end(), d.begin(), d.end());
    }
    const BigInt v = BigInt::from_bytes(material).mod(p_);
    const BigInt candidate = mont_.pow(v, cofactor_exp_);
    if (!candidate.is_one() && !candidate.is_zero()) return candidate;
  }
}

BigInt DlogGroup::random_exponent(Rng& rng) const {
  return BigInt::random_below(rng, q_);
}

BigInt DlogGroup::hash_to_exponent(BytesView data) const {
  const std::size_t qbytes = static_cast<std::size_t>(q_.bit_length() + 7) / 8;
  Bytes material;
  std::uint32_t block = 0;
  while (material.size() < qbytes + 8) {
    Writer w;
    w.u32(block++);
    w.raw(data);
    const Bytes d = hash_bytes(hash_, w.data());
    material.insert(material.end(), d.begin(), d.end());
  }
  return BigInt::from_bytes(material).mod(q_);
}

void DlogGroup::write(Writer& w) const {
  p_.write(w);
  q_.write(w);
  g_.write(w);
  w.u8(hash_ == HashKind::kSha1 ? 0 : 1);
}

DlogGroup DlogGroup::read(Reader& r) {
  BigInt p = BigInt::read(r);
  BigInt q = BigInt::read(r);
  BigInt g = BigInt::read(r);
  const HashKind hash = r.u8() == 0 ? HashKind::kSha1 : HashKind::kSha256;
  return DlogGroup(std::move(p), std::move(q), std::move(g), hash);
}

void DleqProof::write(Writer& w) const {
  c.write(w);
  z.write(w);
}

DleqProof DleqProof::read(Reader& r) {
  DleqProof out;
  out.c = BigInt::read(r);
  out.z = BigInt::read(r);
  return out;
}

namespace {
BigInt challenge(const DlogGroup& grp, const BigInt& g1, const BigInt& h1,
                 const BigInt& g2, const BigInt& h2, const BigInt& a1,
                 const BigInt& a2) {
  Writer w;
  g1.write(w);
  h1.write(w);
  g2.write(w);
  h2.write(w);
  a1.write(w);
  a2.write(w);
  return grp.hash_to_exponent(w.data());
}
}  // namespace

DleqProof dleq_prove(const DlogGroup& grp, const BigInt& g1, const BigInt& h1,
                     const BigInt& g2, const BigInt& h2, const BigInt& x,
                     Rng& rng, const DleqHints& hints) {
  const BigInt r = grp.random_exponent(rng);
  const BigInt a1 =
      hints.g1_long_lived ? grp.exp_cached(g1, r) : grp.exp_reduced(g1, r);
  const BigInt a2 =
      hints.g2_long_lived ? grp.exp_cached(g2, r) : grp.exp_reduced(g2, r);
  const BigInt c = challenge(grp, g1, h1, g2, h2, a1, a2);
  const BigInt z = (r + c * x).mod(grp.q());
  return {c, z};
}

bool dleq_verify(const DlogGroup& grp, const BigInt& g1, const BigInt& h1,
                 const BigInt& g2, const BigInt& h2, const DleqProof& proof,
                 const DleqHints& hints) {
  if (proof.c.is_negative() || proof.z.is_negative() || proof.c >= grp.q() ||
      proof.z >= grp.q()) {
    return false;
  }
  if (!(hints.h1_long_lived ? grp.is_member_cached(h1) : grp.is_member(h1)))
    return false;
  if (!(hints.h2_long_lived ? grp.is_member_cached(h2) : grp.is_member(h2)))
    return false;
  // a_i = g_i^z * h_i^{-c}, one simultaneous exponentiation each: the
  // negation is folded into the group order, so no modular inverse.
  const BigInt a1 = grp.dual_exp_neg(g1, proof.z, hints.g1_long_lived, h1,
                                     proof.c, hints.h1_long_lived);
  const BigInt a2 = grp.dual_exp_neg(g2, proof.z, hints.g2_long_lived, h2,
                                     proof.c, hints.h2_long_lived);
  return challenge(grp, g1, h1, g2, h2, a1, a2) == proof.c;
}

}  // namespace sintra::crypto
