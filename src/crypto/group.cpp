#include "crypto/group.hpp"

#include <cassert>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "crypto/cost.hpp"
#include "obs/metrics.hpp"

namespace sintra::crypto {

namespace {

/// Map key for a group element: its minimal big-endian magnitude.  Callers
/// only reach the cache after range checks, so values are non-negative.
std::string element_key(const BigInt& y) {
  const Bytes b = y.to_bytes();
  return {b.begin(), b.end()};
}

}  // namespace

/// Per-group precomputation cache.  Everything in here is derived state:
/// dropping it at any moment is only a performance (and work-accounting)
/// event, never a correctness one.  The epoch stamp ties amortization to
/// one simulator run — see cost.hpp.
struct DlogGroup::FastCache {
  struct Entry {
    // Behind a shared_ptr so exponentiations can run OUTSIDE the cache
    // lock (the parallel fallback verifies k proofs on k cores): a reader
    // takes a reference under the lock and keeps the table alive even if
    // eviction or an epoch change drops the entry meanwhile.  Null if only
    // membership is known.
    std::shared_ptr<const bignum::FixedBaseTable> table;
    int member = -1;  // -1 unknown, 0 non-member, 1 member
    std::uint64_t last_use = 0;
  };

  static constexpr std::size_t kMaxElements = 96;
  static constexpr std::size_t kMaxNamed = 64;

  std::mutex mu;
  std::uint64_t epoch = 0;  // 0 never matches a live epoch
  std::uint64_t tick = 0;
  std::unordered_map<std::string, Entry> elements;
  std::unordered_map<std::string, BigInt> named;  // hash_to_group memo

  /// Finds or inserts the entry for `key`, evicting the least recently
  /// used entry when full.  References stay valid across later inserts
  /// (unordered_map nodes are stable), and the eviction victim can never
  /// be a just-touched entry, so two live touch() references are safe.
  Entry& touch(std::string key) {
    auto it = elements.find(key);
    if (it == elements.end()) {
      if (elements.size() >= kMaxElements) {
        auto victim = elements.begin();
        for (auto j = elements.begin(); j != elements.end(); ++j) {
          if (j->second.last_use < victim->second.last_use) victim = j;
        }
        elements.erase(victim);
      }
      it = elements.emplace(std::move(key), Entry{}).first;
    }
    it->second.last_use = ++tick;
    return it->second;
  }
};

DlogGroup::DlogGroup(BigInt p, BigInt q, BigInt g, HashKind hash)
    : p_(std::move(p)),
      q_(std::move(q)),
      g_(std::move(g)),
      cofactor_exp_((p_ - BigInt{1}) / q_),
      mont_(p_),
      hash_(hash),
      cache_(std::make_unique<FastCache>()) {
  if ((p_ - BigInt{1}) % q_ != BigInt{0})
    throw std::invalid_argument("DlogGroup: q does not divide p-1");
  if (!is_member(g_))
    throw std::invalid_argument("DlogGroup: g not an order-q element");
}

DlogGroup::DlogGroup(const DlogGroup& other)
    : p_(other.p_),
      q_(other.q_),
      g_(other.g_),
      cofactor_exp_(other.cofactor_exp_),
      mont_(other.mont_),
      hash_(other.hash_),
      comb_window_bits_(other.comb_window_bits_),
      cache_(std::make_unique<FastCache>()) {}

DlogGroup& DlogGroup::operator=(const DlogGroup& other) {
  if (this != &other) {
    p_ = other.p_;
    q_ = other.q_;
    g_ = other.g_;
    cofactor_exp_ = other.cofactor_exp_;
    mont_ = other.mont_;
    hash_ = other.hash_;
    comb_window_bits_ = other.comb_window_bits_;
    cache_ = std::make_unique<FastCache>();
  }
  return *this;
}

DlogGroup::DlogGroup(DlogGroup&&) noexcept = default;
DlogGroup& DlogGroup::operator=(DlogGroup&&) noexcept = default;
DlogGroup::~DlogGroup() = default;

DlogGroup DlogGroup::generate(Rng& rng, int p_bits, int q_bits,
                              HashKind hash) {
  const bignum::SchnorrGroup grp =
      bignum::generate_schnorr_group(rng, p_bits, q_bits);
  return DlogGroup(grp.p, grp.q, grp.g, hash);
}

void DlogGroup::locked_refresh_epoch() const {
  const std::uint64_t now = cache_epoch();
  if (cache_->epoch != now) {
    cache_->elements.clear();
    cache_->named.clear();
    cache_->epoch = now;
  }
}

void DlogGroup::hint_group_size(int n) const {
  // ~2n+8 long-lived bases: per-party verification keys (coin and TDH2
  // both key per party), the generators, and a handful of per-name bases
  // alive at once.
  const std::size_t expected = 2 * static_cast<std::size_t>(std::max(n, 1)) + 8;
  const int w = bignum::pick_comb_window_bits(q_.bit_length(), p_.bit_length(),
                                              expected);
  const std::lock_guard lk(cache_->mu);
  comb_window_bits_ = w;
}

std::shared_ptr<const bignum::FixedBaseTable> DlogGroup::locked_table(
    const BigInt& base) const {
  FastCache::Entry& entry = cache_->touch(element_key(base));
  if (!entry.table) {
    entry.table = std::make_shared<const bignum::FixedBaseTable>(
        mont_.precompute(base, q_.bit_length(), comb_window_bits_));
  }
  return entry.table;
}

BigInt DlogGroup::exp(const BigInt& base, const BigInt& e) const {
  if (!e.is_negative() && e < q_) return mont_.pow(base, e);
  return mont_.pow(base, e.mod(q_));
}

BigInt DlogGroup::exp_reduced(const BigInt& base, const BigInt& e) const {
  assert(!e.is_negative() && e < q_);
  return mont_.pow(base, e);
}

BigInt DlogGroup::exp_cached(const BigInt& base, const BigInt& e) const {
  std::shared_ptr<const bignum::FixedBaseTable> t;
  {
    const std::lock_guard lk(cache_->mu);
    locked_refresh_epoch();
    t = locked_table(base);
  }
  // The exponentiation itself runs outside the lock: with the parallel
  // share-verification fallback, k threads hammer the same handful of
  // cached bases and would otherwise serialize on the cache mutex.
  if (!e.is_negative() && e < q_) return mont_.pow(*t, e);
  return mont_.pow(*t, e.mod(q_));
}

BigInt DlogGroup::dual_exp(const BigInt& b1, const BigInt& e1, bool cached1,
                           const BigInt& b2, const BigInt& e2,
                           bool cached2) const {
  const BigInt r1 = (!e1.is_negative() && e1 < q_) ? e1 : e1.mod(q_);
  const BigInt r2 = (!e2.is_negative() && e2 < q_) ? e2 : e2.mod(q_);
  if (!cached1 && !cached2) return mont_.mul_pow(b1, r1, b2, r2);
  std::shared_ptr<const bignum::FixedBaseTable> t1;
  std::shared_ptr<const bignum::FixedBaseTable> t2;
  {
    const std::lock_guard lk(cache_->mu);
    locked_refresh_epoch();
    if (cached1) t1 = locked_table(b1);
    if (cached2) t2 = locked_table(b2);
  }
  if (t1 && t2) return mont_.mul_pow(*t1, r1, *t2, r2);
  if (t1) return mont_.mul_pow(*t1, r1, b2, r2);
  return mont_.mul_pow(*t2, r2, b1, r1);
}

BigInt DlogGroup::dual_exp_neg(const BigInt& b1, const BigInt& e1,
                               bool cached1, const BigInt& b2,
                               const BigInt& e2, bool cached2) const {
  BigInt r2 = e2.mod(q_);
  if (!r2.is_zero()) r2 = q_ - r2;
  return dual_exp(b1, e1, cached1, b2, r2, cached2);
}

BigInt DlogGroup::multi_exp(
    const std::vector<std::pair<BigInt, BigInt>>& terms) const {
  std::vector<std::pair<BigInt, BigInt>> reduced;
  reduced.reserve(terms.size());
  for (const auto& [b, e] : terms) {
    reduced.emplace_back(b, (!e.is_negative() && e < q_) ? e : e.mod(q_));
  }
  return mont_.multi_pow(reduced);
}

BigInt DlogGroup::mul(const BigInt& a, const BigInt& b) const {
  return mont_.mul(a, b);
}

BigInt DlogGroup::inv(const BigInt& a) const { return a.mod_inverse(p_); }

bool DlogGroup::is_member(const BigInt& y) const {
  if (y <= BigInt{1} || y >= p_) return false;
  return mont_.pow(y, q_).is_one();
}

bool DlogGroup::is_member_batch(const std::vector<const BigInt*>& ys,
                                Rng& rng) const {
  if (ys.empty()) return true;
  if (ys.size() == 1) return is_member(*ys[0]);
  std::vector<std::pair<BigInt, BigInt>> terms;
  terms.reserve(ys.size());
  for (const BigInt* y : ys) {
    if (*y <= BigInt{1} || *y >= p_) return false;
    // Odd exponents: the order-2 cofactor component — the one a random
    // *even* exponent would erase with probability 1/2 — always survives
    // into the product, since (-1)^odd = -1.  31 bits suffice: the
    // false-accept bound is dominated by *small* odd cofactor primes
    // (<= 1/d for a component of order d), so coefficients wider than the
    // smallest plausible d only lengthen the shared squaring chain.
    const auto t = static_cast<std::int64_t>((rng.next_u64() >> 33) | 1);
    terms.emplace_back(*y, BigInt{t});
  }
  // The exponent q must not be reduced (q mod q == 0 would accept
  // anything), so this goes straight to the Montgomery context rather
  // than through exp()/multi_exp().
  return mont_.pow(mont_.multi_pow(terms), q_).is_one();
}

bool DlogGroup::is_member_cached(const BigInt& y) const {
  if (y <= BigInt{1} || y >= p_) return false;
  std::string key = element_key(y);
  {
    const std::lock_guard lk(cache_->mu);
    locked_refresh_epoch();
    FastCache::Entry& entry = cache_->touch(key);
    if (entry.member >= 0) return entry.member == 1;
  }
  // Miss: run the order-q exponentiation outside the lock (it dominates
  // the cost), then store.  Two racing threads may both compute — the
  // result is identical, so the duplicated work is the only cost.
  const int member = mont_.pow(y, q_).is_one() ? 1 : 0;
  const std::lock_guard lk(cache_->mu);
  locked_refresh_epoch();
  cache_->touch(std::move(key)).member = member;
  return member == 1;
}

BigInt DlogGroup::hash_to_group(BytesView name) const {
  std::string key(name.begin(), name.end());
  const std::lock_guard lk(cache_->mu);
  locked_refresh_epoch();
  auto it = cache_->named.find(key);
  if (it == cache_->named.end()) {
    if (cache_->named.size() >= FastCache::kMaxNamed) cache_->named.clear();
    it = cache_->named.emplace(std::move(key), hash_to_group_uncached(name))
             .first;
  }
  return it->second;
}

BigInt DlogGroup::hash_to_group_uncached(BytesView name) const {
  const std::size_t pbytes = static_cast<std::size_t>(p_.bit_length() + 7) / 8;
  for (std::uint32_t ctr = 0;; ++ctr) {
    // Expand H(ctr || i || name) until we have pbytes + 8 bytes, then
    // reduce mod p and project into the subgroup.
    Bytes material;
    std::uint32_t block = 0;
    while (material.size() < pbytes + 8) {
      Writer w;
      w.u32(ctr);
      w.u32(block++);
      w.raw(name);
      const Bytes d = hash_bytes(hash_, w.data());
      material.insert(material.end(), d.begin(), d.end());
    }
    const BigInt v = BigInt::from_bytes(material).mod(p_);
    const BigInt candidate = mont_.pow(v, cofactor_exp_);
    if (!candidate.is_one() && !candidate.is_zero()) return candidate;
  }
}

BigInt DlogGroup::random_exponent(Rng& rng) const {
  return BigInt::random_below(rng, q_);
}

BigInt DlogGroup::hash_to_exponent(BytesView data) const {
  const std::size_t qbytes = static_cast<std::size_t>(q_.bit_length() + 7) / 8;
  Bytes material;
  std::uint32_t block = 0;
  while (material.size() < qbytes + 8) {
    Writer w;
    w.u32(block++);
    w.raw(data);
    const Bytes d = hash_bytes(hash_, w.data());
    material.insert(material.end(), d.begin(), d.end());
  }
  return BigInt::from_bytes(material).mod(q_);
}

void DlogGroup::write(Writer& w) const {
  p_.write(w);
  q_.write(w);
  g_.write(w);
  w.u8(hash_ == HashKind::kSha1 ? 0 : 1);
}

DlogGroup DlogGroup::read(Reader& r) {
  BigInt p = BigInt::read(r);
  BigInt q = BigInt::read(r);
  BigInt g = BigInt::read(r);
  const HashKind hash = r.u8() == 0 ? HashKind::kSha1 : HashKind::kSha256;
  return DlogGroup(std::move(p), std::move(q), std::move(g), hash);
}

void DleqProof::write(Writer& w) const {
  a1.write(w);
  a2.write(w);
  z.write(w);
}

DleqProof DleqProof::read(Reader& r) {
  DleqProof out;
  out.a1 = BigInt::read(r);
  out.a2 = BigInt::read(r);
  out.z = BigInt::read(r);
  return out;
}

namespace {
BigInt challenge(const DlogGroup& grp, const BigInt& g1, const BigInt& h1,
                 const BigInt& g2, const BigInt& h2, const BigInt& a1,
                 const BigInt& a2) {
  Writer w;
  g1.write(w);
  h1.write(w);
  g2.write(w);
  h2.write(w);
  a1.write(w);
  a2.write(w);
  return grp.hash_to_exponent(w.data());
}
}  // namespace

DleqProof dleq_prove(const DlogGroup& grp, const BigInt& g1, const BigInt& h1,
                     const BigInt& g2, const BigInt& h2, const BigInt& x,
                     Rng& rng, const DleqHints& hints) {
  const BigInt r = grp.random_exponent(rng);
  const BigInt a1 =
      hints.g1_long_lived ? grp.exp_cached(g1, r) : grp.exp_reduced(g1, r);
  const BigInt a2 =
      hints.g2_long_lived ? grp.exp_cached(g2, r) : grp.exp_reduced(g2, r);
  const BigInt c = challenge(grp, g1, h1, g2, h2, a1, a2);
  const BigInt z = (r + c * x).mod(grp.q());
  return {a1, a2, z};
}

bool dleq_verify(const DlogGroup& grp, const BigInt& g1, const BigInt& h1,
                 const BigInt& g2, const BigInt& h2, const DleqProof& proof,
                 const DleqHints& hints) {
  if (proof.z.is_negative() || proof.z >= grp.q()) return false;
  if (proof.a1 <= BigInt{0} || proof.a1 >= grp.p()) return false;
  if (proof.a2 <= BigInt{0} || proof.a2 >= grp.p()) return false;
  if (!(hints.h1_long_lived ? grp.is_member_cached(h1) : grp.is_member(h1)))
    return false;
  if (!(hints.h2_long_lived ? grp.is_member_cached(h2) : grp.is_member(h2)))
    return false;
  // g_i^z * h_i^{-c} == a_i, one simultaneous exponentiation each: the
  // negation is folded into the group order, so no modular inverse.  The
  // transmitted commitments need no subgroup check: they only feed the
  // challenge hash, and a cofactor component in a_i can make these
  // equations fail, never pass for a false statement about h1/h2.
  const BigInt c = challenge(grp, g1, h1, g2, h2, proof.a1, proof.a2);
  if (grp.dual_exp_neg(g1, proof.z, hints.g1_long_lived, h1, c,
                       hints.h1_long_lived) != proof.a1) {
    return false;
  }
  return grp.dual_exp_neg(g2, proof.z, hints.g2_long_lived, h2, c,
                          hints.h2_long_lived) == proof.a2;
}

namespace {

/// Random odd 63-bit batching coefficient (odd ⇒ nonzero, and the
/// order-2 argument of is_member_batch applies to the RLC check too).
BigInt batch_coeff(Rng& rng) {
  return BigInt{static_cast<std::int64_t>((rng.next_u64() >> 1) | 1)};
}

}  // namespace

bool dleq_batch_verify(const DlogGroup& grp,
                       const std::vector<DleqStatement>& stmts, Rng& rng,
                       const DleqHints& hints, BatchMembership membership) {
  if (stmts.empty()) return true;
  if (stmts.size() == 1) {
    // Bit-for-bit the scalar verifier (required by callers that treat a
    // singleton "batch" as authoritative, e.g. dleq_find_invalid).
    const DleqStatement& s = stmts.front();
    return dleq_verify(grp, s.g1, s.h1, s.g2, s.h2, s.proof, hints);
  }
  const OpScope ops("dleq.batch_verify");
  {
    static obs::Histogram& sizes =
        obs::registry().histogram("crypto.batch_verify_size");
    sizes.observe(static_cast<double>(stmts.size()));
  }

  // Range checks, identical to the scalar verifier's.
  for (const DleqStatement& s : stmts) {
    if (s.proof.z.is_negative() || s.proof.z >= grp.q()) return false;
    if (s.proof.a1 <= BigInt{0} || s.proof.a1 >= grp.p()) return false;
    if (s.proof.a2 <= BigInt{0} || s.proof.a2 >= grp.p()) return false;
  }
  // h1 are verification keys — long-lived, so membership is memoized and
  // always checked individually (a cache hit costs nothing).
  for (const DleqStatement& s : stmts) {
    if (!(hints.h1_long_lived ? grp.is_member_cached(s.h1)
                              : grp.is_member(s.h1))) {
      return false;
    }
  }
  // h2 are the fresh share elements; the caller picks the cost/assurance
  // trade-off (see BatchMembership).
  if (membership == BatchMembership::kBatched) {
    std::vector<const BigInt*> ys;
    ys.reserve(stmts.size());
    for (const DleqStatement& s : stmts) ys.push_back(&s.h2);
    if (!grp.is_member_batch(ys, rng)) return false;
  } else {
    for (const DleqStatement& s : stmts) {
      if (!(hints.h2_long_lived ? grp.is_member_cached(s.h2)
                                : grp.is_member(s.h2))) {
        return false;
      }
    }
  }

  // Fold the 2m verification equations into one multi-exponentiation.
  // Every equation gets its own independent random coefficient — r_j for
  // statement j's first equation, s_j for its second — so a2's exponent
  // stays 63 bits instead of the ~126 a shared-δ scaling would produce.
  // When the g1 (generator) and g2 (per-name base) columns are shared
  // across the batch — the common case: one coin, one ciphertext — they
  // collapse to a single term each with exponents Σ r_j z_j and Σ s_j z_j.
  bool shared_g1 = true;
  bool shared_g2 = true;
  for (std::size_t j = 1; j < stmts.size(); ++j) {
    shared_g1 = shared_g1 && stmts[j].g1 == stmts.front().g1;
    shared_g2 = shared_g2 && stmts[j].g2 == stmts.front().g2;
  }
  BigInt sum_rz{0};
  BigInt sum_sz{0};
  std::vector<std::pair<BigInt, BigInt>> terms;
  terms.reserve(4 * stmts.size() + 2 + (shared_g1 ? 0 : stmts.size()) +
                (shared_g2 ? 0 : stmts.size()));
  for (const DleqStatement& s : stmts) {
    const BigInt c =
        challenge(grp, s.g1, s.h1, s.g2, s.h2, s.proof.a1, s.proof.a2);
    const BigInt rj = batch_coeff(rng);
    const BigInt sj = batch_coeff(rng);
    if (shared_g1) {
      sum_rz = sum_rz + rj * s.proof.z;
    } else {
      terms.emplace_back(s.g1, rj * s.proof.z);
    }
    if (shared_g2) {
      sum_sz = sum_sz + sj * s.proof.z;
    } else {
      terms.emplace_back(s.g2, sj * s.proof.z);
    }
    terms.emplace_back(s.h1, -(rj * c));
    terms.emplace_back(s.proof.a1, -rj);
    terms.emplace_back(s.h2, -(sj * c));
    terms.emplace_back(s.proof.a2, -sj);
  }
  if (shared_g1) terms.emplace_back(stmts.front().g1, sum_rz);
  if (shared_g2) terms.emplace_back(stmts.front().g2, sum_sz);
  return grp.multi_exp(terms).is_one();
}

namespace {

void find_invalid_range(const DlogGroup& grp,
                        const std::vector<DleqStatement>& stmts,
                        std::size_t lo, std::size_t hi, bool check, Rng& rng,
                        const DleqHints& hints,
                        std::vector<std::size_t>& out) {
  if (hi - lo == 1) {
    const DleqStatement& s = stmts[lo];
    // Singletons always get the scalar verdict: batch randomness can
    // spuriously *reject* cofactor-laden-but-true statements, and a
    // misidentified honest signer would be blacklisted forever.
    if (!dleq_verify(grp, s.g1, s.h1, s.g2, s.h2, s.proof, hints))
      out.push_back(lo);
    return;
  }
  if (check) {
    const std::vector<DleqStatement> seg(stmts.begin() + static_cast<long>(lo),
                                         stmts.begin() + static_cast<long>(hi));
    if (dleq_batch_verify(grp, seg, rng, hints, BatchMembership::kIndividual))
      return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  find_invalid_range(grp, stmts, lo, mid, true, rng, hints, out);
  find_invalid_range(grp, stmts, mid, hi, true, rng, hints, out);
}

}  // namespace

std::vector<std::size_t> dleq_find_invalid(
    const DlogGroup& grp, const std::vector<DleqStatement>& stmts, Rng& rng,
    const DleqHints& hints) {
  std::vector<std::size_t> out;
  if (stmts.empty()) return out;
  // The caller reaches here after a failed batch, so skip re-checking the
  // full range and split immediately.
  find_invalid_range(grp, stmts, 0, stmts.size(), /*check=*/false, rng, hints,
                     out);
  return out;
}

}  // namespace sintra::crypto
