// Off-loop crypto worker pool.
//
// Threshold-crypto combines and verifications are the dominant CPU cost of
// a SINTRA node (paper §4.2); running them on the epoll thread stalls
// message intake for milliseconds at a time.  This pool lets the network
// transport push that work onto std::jthread workers and collect finished
// jobs back on the owner thread: `submit(work, complete)` runs `work` on a
// worker, then queues `complete` on an MPSC completion queue that the
// owner drains with drain_completions() — typically from an
// EventLoop::call_soon task installed via set_completion_notify().
//
// A pool with zero threads is fully inline: submit() runs both closures
// synchronously before returning.  That is the simulator's configuration —
// single-threaded, so simulated-time traces and work accounting stay
// byte-identical run to run — and the semantics every caller must be
// correct under, which keeps protocol logic oblivious to threading.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <stop_token>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace sintra::crypto {

class WorkPool {
 public:
  /// Spawns `threads` workers; 0 = inline mode (no threads at all).
  explicit WorkPool(std::size_t threads);

  /// Stops accepting work, lets workers drain the queue, joins them.
  /// Completions queued but not yet drained are discarded.
  ~WorkPool();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  [[nodiscard]] std::size_t threads() const { return workers_.size(); }
  [[nodiscard]] bool inline_mode() const { return workers_.empty(); }

  /// Runs `work` on a worker thread, then queues `complete` for the owner
  /// thread's next drain_completions().  Inline mode runs both here,
  /// synchronously.  `work` must be self-contained: it may run after the
  /// submitting protocol instance is gone, so it must capture shared
  /// ownership (scheme handles are shared_ptr) and values, never raw
  /// pointers into protocol state — touch protocol state only from
  /// `complete`, which the owner thread runs.
  void submit(std::function<void()> work, std::function<void()> complete);

  /// Runs every job in `jobs` to completion before returning, with the
  /// CALLING thread participating: the caller claims jobs from a shared
  /// cursor while up to threads() idle workers help.  Because the caller
  /// never waits for a worker slot — it executes unclaimed jobs itself —
  /// this is safe to invoke from inside a pool job (the fallback
  /// verification of a combine attempt that is already running on a
  /// worker) with no deadlock.  Inline mode runs the jobs sequentially in
  /// vector order on the caller, which is the simulator's deterministic
  /// path.  Jobs must be independent and must not throw; they communicate
  /// results through captured slots.
  void run_parallel(std::vector<std::function<void()>>& jobs);

  /// Runs every queued completion on the calling thread (the owner).
  /// Returns how many ran.
  std::size_t drain_completions();

  /// Installs a hook invoked (on a worker thread) each time a completion
  /// is queued; the owner uses it to schedule a drain on its own thread,
  /// e.g. `pool.set_completion_notify([&loop, wp] { loop.call_soon(...) })`.
  /// Install before the first submit(); the hook must be thread-safe and
  /// must not call back into the pool synchronously.
  void set_completion_notify(std::function<void()> notify);

 private:
  struct Job {
    std::function<void()> work;
    std::function<void()> complete;
    double enqueue_ms;
  };

  void worker(const std::stop_token& st);
  static double now_ms();
  void finish(std::function<void()> complete);

  std::mutex mu_;
  std::condition_variable_any cv_;
  std::deque<Job> queue_;

  std::mutex done_mu_;
  std::vector<std::function<void()>> done_;
  std::function<void()> notify_;

  // Resolved once; updates are relaxed atomics (see obs/metrics.hpp).
  obs::Counter* m_jobs_;
  obs::Gauge* m_depth_;
  obs::Histogram* m_wait_ms_;

  std::vector<std::jthread> workers_;  // last member: joins before the rest die
};

}  // namespace sintra::crypto
