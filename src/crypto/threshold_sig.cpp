#include "crypto/threshold_sig.hpp"

#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>

#include "bignum/montgomery.hpp"
#include "crypto/cost.hpp"
#include "crypto/shamir.hpp"
#include "crypto/work_pool.hpp"

namespace sintra::crypto {

namespace {

// Upper bound on the response z = s_i*c + r: the share is below the secret
// modulus m < N, c spans one hash output, and r spans bits(N) + two hash
// outputs; the margin absorbs the carries.
int z_exp_bits(const RsaThresholdPublic& pub) {
  return pub.modulus.bit_length() +
         2 * static_cast<int>(hash_digest_size(pub.hash)) * 8 + 16;
}

int challenge_bits(const RsaThresholdPublic& pub) {
  return static_cast<int>(hash_digest_size(pub.hash)) * 8;
}

}  // namespace

/// Precomputation shared by sign/verify/combine on one scheme handle.  The
/// comb tables perform real multiplications when built, so they carry the
/// global cache epoch: a new simulator run drops them and pays the build
/// again, keeping virtual timings reproducible (see crypto/cost.hpp).
///
/// Concurrency: verify_share builds whatever it needs under `mu` and then
/// computes lock-free against an immutable snapshot, so the work pool can
/// verify k shares on k cores during fallback.  The epoch-guarded tables
/// live behind a shared_ptr that is *replaced* (never mutated in place) on
/// epoch change; built entries are write-once under `mu`, so a reader that
/// saw an entry built can keep using it without the lock.
struct RsaThresholdScheme::FastPath {
  struct Signer {
    BigInt vi_inv;                        // v_i^{-1} mod N
    bignum::FixedBaseTable vi_inv_table;  // comb over one hash output
    bool ready = false;
  };

  struct Tables {
    bignum::FixedBaseTable v_table;  // comb for v over full-width responses
    std::vector<Signer> signers;
  };

  std::mutex mu;
  std::uint64_t epoch = 0;  // 0 never matches a live epoch
  // The Montgomery context costs no counted work to build; it persists
  // across epochs and only the charged tables are epoch-guarded.  It is
  // immutable once built and therefore safe to read without the lock.
  std::optional<bignum::Montgomery> mont;
  std::shared_ptr<Tables> tables;
  int window_bits = 4;

  const bignum::Montgomery& refreshed(const RsaThresholdPublic& pub) {
    const std::uint64_t now = cache_epoch();
    if (epoch != now || !tables) {
      auto fresh = std::make_shared<Tables>();
      fresh->signers.assign(static_cast<std::size_t>(pub.n), {});
      tables = std::move(fresh);  // old snapshot stays alive via readers
      epoch = now;
    }
    if (!mont) {
      mont.emplace(pub.modulus);
      // Widest window whose projected per-handle total (one response-wide
      // v table + n challenge-wide v_i^{-1} tables) fits the comb budget:
      // 4 at the paper's n=4, narrower as n or the modulus grows.
      const int mod_bits = pub.modulus.bit_length();
      for (window_bits = 4; window_bits > 2; --window_bits) {
        const std::size_t total =
            bignum::comb_table_bytes(z_exp_bits(pub), mod_bits, window_bits) +
            static_cast<std::size_t>(pub.n) *
                bignum::comb_table_bytes(challenge_bits(pub), mod_bits,
                                         window_bits);
        if (total <= bignum::kCombMemoryBudgetBytes) break;
      }
    }
    return *mont;
  }

  const bignum::FixedBaseTable& v_comb(const RsaThresholdPublic& pub) {
    if (!tables->v_table.valid())
      tables->v_table = mont->precompute(pub.v, z_exp_bits(pub), window_bits);
    return tables->v_table;
  }

  const Signer& signer_comb(const RsaThresholdPublic& pub, int signer) {
    Signer& s = tables->signers[static_cast<std::size_t>(signer)];
    if (!s.ready) {
      s.vi_inv = pub.vi[static_cast<std::size_t>(signer)].mod_inverse(
          pub.modulus);
      s.vi_inv_table =
          mont->precompute(s.vi_inv, challenge_bits(pub), window_bits);
      s.ready = true;
    }
    return s;
  }
};

namespace {

// Fiat–Shamir challenge for the share-correctness proof: maps the proof
// transcript to an integer of hash-output length.
BigInt share_challenge(const RsaThresholdPublic& pub, const BigInt& x_tilde,
                       const BigInt& vi, const BigInt& xi2, const BigInt& vp,
                       const BigInt& xp) {
  Writer w;
  pub.v.write(w);
  x_tilde.write(w);
  vi.write(w);
  xi2.write(w);
  vp.write(w);
  xp.write(w);
  return BigInt::from_bytes(hash_bytes(pub.hash, w.data()));
}

struct ParsedShare {
  BigInt xi;
  BigInt c;
  BigInt z;
};

ParsedShare parse_share(BytesView share) {
  Reader r(share);
  ParsedShare out;
  out.xi = BigInt::read(r);
  out.c = BigInt::read(r);
  out.z = BigInt::read(r);
  r.expect_end();
  return out;
}

}  // namespace

std::optional<ThresholdSigScheme::CheckedSignature>
ThresholdSigScheme::combine_checked(
    BytesView msg, const std::vector<std::pair<int, Bytes>>& shares,
    WorkPool* wp) const {
  // Working pool: first-come order, one share per signer, blacklisted
  // signers skipped up front.
  std::vector<const std::pair<int, Bytes>*> pool;
  std::set<int> seen;
  pool.reserve(shares.size());
  for (const auto& share : shares) {
    const int idx = share.first;
    if (idx < 0 || idx >= n() || is_blacklisted(idx)) continue;
    if (!seen.insert(idx).second) continue;
    pool.push_back(&share);
  }

  bool first_attempt = true;
  while (static_cast<int>(pool.size()) >= k()) {
    std::vector<std::pair<int, Bytes>> chosen;
    chosen.reserve(static_cast<std::size_t>(k()));
    for (int j = 0; j < k(); ++j) chosen.push_back(*pool[static_cast<std::size_t>(j)]);

    Bytes sig;
    bool ok = false;
    try {
      sig = combine(msg, chosen);
      ok = verify(msg, sig);
    } catch (const std::exception&) {
      ok = false;  // malformed share bytes surface as parse errors here
    }
    if (ok) {
      if (first_attempt) count_optimistic_hit("threshold_sig");
      CheckedSignature out;
      out.sig = std::move(sig);
      out.used.reserve(chosen.size());
      for (const auto& [idx, raw] : chosen) out.used.push_back(idx);
      return out;
    }

    // Fallback: find the offenders among the chosen shares, remember them,
    // and retry with replacements.
    first_attempt = false;
    count_fallback("threshold_sig");
    std::set<int> dropped;
    if (wp != nullptr && !wp->inline_mode() && chosen.size() > 1) {
      // k independent verifications across cores; verdicts land in
      // per-share slots, so the blacklist outcome matches the serial loop.
      std::vector<char> good(chosen.size(), 0);
      std::vector<std::function<void()>> jobs;
      jobs.reserve(chosen.size());
      for (std::size_t j = 0; j < chosen.size(); ++j) {
        jobs.push_back([this, msg, j, &chosen, &good] {
          good[j] = verify_share(msg, chosen[j].first, chosen[j].second)
                        ? 1
                        : 0;
        });
      }
      wp->run_parallel(jobs);
      count_parallel_verify("threshold_sig", chosen.size());
      for (std::size_t j = 0; j < chosen.size(); ++j) {
        if (good[j] == 0) {
          blacklist_.add(chosen[j].first);
          dropped.insert(chosen[j].first);
        }
      }
    } else {
      for (const auto& [idx, raw] : chosen) {
        if (!verify_share(msg, idx, raw)) {
          blacklist_.add(idx);
          dropped.insert(idx);
        }
      }
    }
    if (dropped.empty()) {
      // Every chosen share verifies individually yet the combination fails
      // its check — not attributable to a signer (e.g. inconsistent dealer
      // data).  Give up instead of retrying the same set forever.
      return std::nullopt;
    }
    std::erase_if(pool, [&dropped](const std::pair<int, Bytes>* s) {
      return dropped.count(s->first) != 0;
    });
  }
  return std::nullopt;
}

RsaThresholdScheme::RsaThresholdScheme(
    std::shared_ptr<const RsaThresholdPublic> pub, int index, BigInt share,
    std::uint64_t prover_seed)
    : pub_(std::move(pub)),
      index_(index),
      share_(std::move(share)),
      prover_rng_(prover_seed),
      fast_(std::make_unique<FastPath>()) {}

RsaThresholdScheme::~RsaThresholdScheme() = default;

Bytes RsaThresholdScheme::sign_share(BytesView msg) {
  if (index_ < 0)
    throw std::logic_error("RsaThresholdScheme: verify-only handle");
  const OpScope ops("threshold_sig.sign_share");
  const std::lock_guard lk(fast_->mu);
  const bignum::Montgomery& mont = fast_->refreshed(*pub_);
  const BigInt x = rsa_fdh(msg, pub_->modulus, pub_->hash);
  const BigInt two_delta = pub_->delta << 1;
  const BigInt xi = mont.pow(x, two_delta * share_);

  // Proof of correctness (discrete-log equality between the verification
  // key pair (v, v_i) and (x~, x_i^2) with x~ = x^{4Δ}).
  const BigInt x_tilde = mont.pow(x, two_delta << 1);
  const BigInt xi2 = mont.mul(xi, xi);
  // r uniform in [0, 2^(bits(N) + 2*hash_bits)).
  const int rbits =
      pub_->modulus.bit_length() +
      2 * static_cast<int>(hash_digest_size(pub_->hash)) * 8;
  const BigInt r =
      BigInt::from_bytes(prover_rng_.bytes(static_cast<std::size_t>(rbits) / 8));
  const BigInt vp = mont.pow(fast_->v_comb(*pub_), r);
  const BigInt xp = mont.pow(x_tilde, r);
  const BigInt c = share_challenge(*pub_, x_tilde,
                                   pub_->vi[static_cast<std::size_t>(index_)],
                                   xi2, vp, xp);
  const BigInt z = share_ * c + r;

  Writer w;
  xi.write(w);
  c.write(w);
  z.write(w);
  return std::move(w).take();
}

bool RsaThresholdScheme::verify_share(BytesView msg, int signer,
                                      BytesView share) const {
  if (signer < 0 || signer >= pub_->n) return false;
  const OpScope ops("threshold_sig.verify_share");
  ParsedShare s;
  try {
    s = parse_share(share);
  } catch (const SerdeError&) {
    return false;
  }
  if (s.xi.is_negative() || s.xi >= pub_->modulus || s.xi.is_zero())
    return false;
  if (s.c.is_negative() || s.z.is_negative()) return false;

  // Ensure-build under the lock, compute lock-free against the snapshot:
  // concurrent verifications (the work-pool fallback) serialize only on
  // the cheap table lookups, never on the exponentiations.
  std::shared_ptr<const FastPath::Tables> tables;
  const bignum::Montgomery* mont = nullptr;
  const bignum::FixedBaseTable* v_table = nullptr;
  const FastPath::Signer* sg = nullptr;
  {
    const std::lock_guard lk(fast_->mu);
    mont = &fast_->refreshed(*pub_);
    v_table = &fast_->v_comb(*pub_);
    sg = &fast_->signer_comb(*pub_, signer);
    tables = fast_->tables;  // keeps v_table/sg alive across epoch swaps
  }
  const BigInt x = rsa_fdh(msg, pub_->modulus, pub_->hash);
  const BigInt x_tilde = mont->pow(x, pub_->delta << 2);
  const BigInt xi2 = mont->mul(s.xi, s.xi);
  const BigInt& vi = pub_->vi[static_cast<std::size_t>(signer)];

  // v' = v^z * v_i^{-c},  x' = x~^z * x_i^{-2c}.  The RSA group order is
  // unknown, so negative exponents cannot be folded into it; instead the
  // cached v_i^{-1} (and a per-share xi2^{-1}) turn both products into
  // simultaneous exponentiations with non-negative exponents.  The v/v_i
  // pair evaluates over comb tables with no squarings at all; honest
  // shares always fit the table widths, oversized adversarial exponents
  // take the slow fallback inside mul_pow.
  BigInt vp, xp;
  try {
    vp = mont->mul_pow(*v_table, s.z, sg->vi_inv_table, s.c);
    xp = mont->mul_pow(x_tilde, s.z, xi2.mod_inverse(pub_->modulus), s.c);
  } catch (const std::domain_error&) {
    return false;  // a non-invertible element would factor N; treat as bad
  }
  return share_challenge(*pub_, x_tilde, vi, xi2, vp, xp) == s.c;
}

Bytes RsaThresholdScheme::combine(
    BytesView msg, const std::vector<std::pair<int, Bytes>>& shares) const {
  const OpScope ops("threshold_sig.combine");
  if (static_cast<int>(shares.size()) < pub_->k)
    throw std::invalid_argument("RsaThresholdScheme::combine: need k shares");
  std::vector<int> indices;
  std::vector<BigInt> xs;
  std::set<int> seen;
  for (const auto& [idx, raw] : shares) {
    if (static_cast<int>(indices.size()) == pub_->k) break;
    if (idx < 0 || idx >= pub_->n || !seen.insert(idx).second)
      throw std::invalid_argument(
          "RsaThresholdScheme::combine: bad or duplicate signer index");
    indices.push_back(idx);
    xs.push_back(parse_share(raw).xi);
  }

  const std::lock_guard lk(fast_->mu);
  const bignum::Montgomery& mont = fast_->refreshed(*pub_);
  // w = prod x_j^{2λ_j} as one simultaneous multi-exponentiation.  The
  // integer coefficients are memoized per signer set; a negative 2λ_j is
  // handled by inverting the share once (the group order is unknown, so
  // the exponent itself cannot be reduced).
  const std::vector<BigInt> lambdas =
      lagrange_.integer_coeffs(pub_->delta, indices);
  std::vector<std::pair<BigInt, BigInt>> terms;
  terms.reserve(indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) {
    const BigInt exp2 = lambdas[j] << 1;  // 2*lambda
    if (exp2.is_negative()) {
      terms.emplace_back(xs[j].mod_inverse(pub_->modulus), -exp2);
    } else {
      terms.emplace_back(xs[j], exp2);
    }
  }
  const BigInt w = mont.multi_pow(terms);
  // w^e == x^{4Δ²}.  With a·4Δ² + b·e = 1 and y = w^a·x^b we get
  // y^e = x^{4Δ²·a + e·b} = x.
  const BigInt x = rsa_fdh(msg, pub_->modulus, pub_->hash);
  const BigInt four_delta_sq = (pub_->delta * pub_->delta) << 2;
  const BigInt a = four_delta_sq.mod_inverse(pub_->e);
  const BigInt b = (BigInt{1} - a * four_delta_sq) / pub_->e;  // exact, <= 0
  const BigInt y =
      b.is_negative()
          ? mont.mul_pow(w, a, x.mod_inverse(pub_->modulus), -b)
          : mont.mul_pow(w, a, x, b);
  return y.to_bytes_padded(
      static_cast<std::size_t>(pub_->modulus.bit_length() + 7) / 8);
}

bool RsaThresholdScheme::verify(BytesView msg, BytesView sig) const {
  const RsaPublicKey key{pub_->modulus, pub_->e};
  return rsa_verify(key, msg, sig, pub_->hash);
}

std::unique_ptr<RsaThresholdScheme> RsaThresholdDeal::make_party(int i) const {
  if (i < 0) {
    return std::make_unique<RsaThresholdScheme>(pub, -1, BigInt{0}, 0);
  }
  return std::make_unique<RsaThresholdScheme>(
      pub, i, shares[static_cast<std::size_t>(i)],
      0x7e51 + static_cast<std::uint64_t>(i));
}

RsaThresholdDeal deal_rsa_threshold_with_key(Rng& rng, int n, int k,
                                             const RsaKeyPair& key,
                                             HashKind hash) {
  if (n < 1 || k < 1 || k > n)
    throw std::invalid_argument("deal_rsa_threshold: need 1 <= k <= n");
  if (BigInt{n} >= key.pub.e)
    throw std::invalid_argument("deal_rsa_threshold: e must exceed n");
  const BigInt pprime = (key.p - BigInt{1}) >> 1;
  const BigInt qprime = (key.q - BigInt{1}) >> 1;
  const BigInt m = pprime * qprime;
  const BigInt d = key.pub.e.mod_inverse(m);

  const SecretPolynomial poly(rng, d, m, k);
  auto pub = std::make_shared<RsaThresholdPublic>();
  pub->n = n;
  pub->k = k;
  pub->modulus = key.pub.n;
  pub->e = key.pub.e;
  pub->delta = factorial(n);
  pub->hash = hash;
  // v = u^2 for random u: a generator of the squares w.h.p.
  const bignum::Montgomery mont(key.pub.n);
  const BigInt u =
      BigInt{2} + BigInt::random_below(rng, key.pub.n - BigInt{3});
  pub->v = mont.mul(u, u);

  RsaThresholdDeal deal;
  deal.shares = poly.shares(n);
  pub->vi.reserve(static_cast<std::size_t>(n));
  for (const BigInt& si : deal.shares) {
    pub->vi.push_back(mont.pow(pub->v, si));
  }
  deal.pub = std::move(pub);
  return deal;
}

RsaThresholdDeal deal_rsa_threshold(Rng& rng, int n, int k, int modulus_bits,
                                    HashKind hash) {
  const RsaKeyPair key =
      rsa_generate(rng, modulus_bits, /*safe_primes=*/true, BigInt{65537});
  return deal_rsa_threshold_with_key(rng, n, k, key, hash);
}

}  // namespace sintra::crypto
