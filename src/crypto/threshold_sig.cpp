#include "crypto/threshold_sig.hpp"

#include <set>
#include <stdexcept>

#include "bignum/montgomery.hpp"
#include "crypto/shamir.hpp"

namespace sintra::crypto {

namespace {

// Fiat–Shamir challenge for the share-correctness proof: maps the proof
// transcript to an integer of hash-output length.
BigInt share_challenge(const RsaThresholdPublic& pub, const BigInt& x_tilde,
                       const BigInt& vi, const BigInt& xi2, const BigInt& vp,
                       const BigInt& xp) {
  Writer w;
  pub.v.write(w);
  x_tilde.write(w);
  vi.write(w);
  xi2.write(w);
  vp.write(w);
  xp.write(w);
  return BigInt::from_bytes(hash_bytes(pub.hash, w.data()));
}

struct ParsedShare {
  BigInt xi;
  BigInt c;
  BigInt z;
};

ParsedShare parse_share(BytesView share) {
  Reader r(share);
  ParsedShare out;
  out.xi = BigInt::read(r);
  out.c = BigInt::read(r);
  out.z = BigInt::read(r);
  r.expect_end();
  return out;
}

}  // namespace

RsaThresholdScheme::RsaThresholdScheme(
    std::shared_ptr<const RsaThresholdPublic> pub, int index, BigInt share,
    std::uint64_t prover_seed)
    : pub_(std::move(pub)),
      index_(index),
      share_(std::move(share)),
      prover_rng_(prover_seed) {}

Bytes RsaThresholdScheme::sign_share(BytesView msg) {
  if (index_ < 0)
    throw std::logic_error("RsaThresholdScheme: verify-only handle");
  const bignum::Montgomery mont(pub_->modulus);
  const BigInt x = rsa_fdh(msg, pub_->modulus, pub_->hash);
  const BigInt two_delta = pub_->delta << 1;
  const BigInt xi = mont.pow(x, two_delta * share_);

  // Proof of correctness (discrete-log equality between the verification
  // key pair (v, v_i) and (x~, x_i^2) with x~ = x^{4Δ}).
  const BigInt x_tilde = mont.pow(x, two_delta << 1);
  const BigInt xi2 = mont.mul(xi, xi);
  // r uniform in [0, 2^(bits(N) + 2*hash_bits)).
  const int rbits =
      pub_->modulus.bit_length() +
      2 * static_cast<int>(hash_digest_size(pub_->hash)) * 8;
  const BigInt r =
      BigInt::from_bytes(prover_rng_.bytes(static_cast<std::size_t>(rbits) / 8));
  const BigInt vp = mont.pow(pub_->v, r);
  const BigInt xp = mont.pow(x_tilde, r);
  const BigInt c = share_challenge(*pub_, x_tilde,
                                   pub_->vi[static_cast<std::size_t>(index_)],
                                   xi2, vp, xp);
  const BigInt z = share_ * c + r;

  Writer w;
  xi.write(w);
  c.write(w);
  z.write(w);
  return std::move(w).take();
}

bool RsaThresholdScheme::verify_share(BytesView msg, int signer,
                                      BytesView share) const {
  if (signer < 0 || signer >= pub_->n) return false;
  ParsedShare s;
  try {
    s = parse_share(share);
  } catch (const SerdeError&) {
    return false;
  }
  if (s.xi.is_negative() || s.xi >= pub_->modulus || s.xi.is_zero())
    return false;
  if (s.c.is_negative() || s.z.is_negative()) return false;

  const bignum::Montgomery mont(pub_->modulus);
  const BigInt x = rsa_fdh(msg, pub_->modulus, pub_->hash);
  const BigInt x_tilde = mont.pow(x, pub_->delta << 2);
  const BigInt xi2 = mont.mul(s.xi, s.xi);
  const BigInt& vi = pub_->vi[static_cast<std::size_t>(signer)];

  // v' = v^z * v_i^{-c},  x' = x~^z * x_i^{-2c}
  BigInt vp, xp;
  try {
    vp = mont.mul(mont.pow(pub_->v, s.z),
                  mont.pow(vi, s.c).mod_inverse(pub_->modulus));
    xp = mont.mul(mont.pow(x_tilde, s.z),
                  mont.pow(xi2, s.c).mod_inverse(pub_->modulus));
  } catch (const std::domain_error&) {
    return false;  // a non-invertible element would factor N; treat as bad
  }
  return share_challenge(*pub_, x_tilde, vi, xi2, vp, xp) == s.c;
}

Bytes RsaThresholdScheme::combine(
    BytesView msg, const std::vector<std::pair<int, Bytes>>& shares) const {
  if (static_cast<int>(shares.size()) < pub_->k)
    throw std::invalid_argument("RsaThresholdScheme::combine: need k shares");
  std::vector<int> indices;
  std::vector<BigInt> xs;
  std::set<int> seen;
  for (const auto& [idx, raw] : shares) {
    if (static_cast<int>(indices.size()) == pub_->k) break;
    if (idx < 0 || idx >= pub_->n || !seen.insert(idx).second)
      throw std::invalid_argument(
          "RsaThresholdScheme::combine: bad or duplicate signer index");
    indices.push_back(idx);
    xs.push_back(parse_share(raw).xi);
  }

  const bignum::Montgomery mont(pub_->modulus);
  BigInt w{1};
  for (std::size_t j = 0; j < indices.size(); ++j) {
    const BigInt lambda =
        integer_lagrange_coeff(pub_->delta, indices, static_cast<int>(j));
    const BigInt exp2 = lambda << 1;  // 2*lambda
    if (exp2.is_negative()) {
      const BigInt inv = xs[j].mod_inverse(pub_->modulus);
      w = mont.mul(w, mont.pow(inv, -exp2));
    } else {
      w = mont.mul(w, mont.pow(xs[j], exp2));
    }
  }
  // w^e == x^{4Δ²}.  With a·4Δ² + b·e = 1 and y = w^a·x^b we get
  // y^e = x^{4Δ²·a + e·b} = x.
  const BigInt x = rsa_fdh(msg, pub_->modulus, pub_->hash);
  const BigInt four_delta_sq = (pub_->delta * pub_->delta) << 2;
  const BigInt a = four_delta_sq.mod_inverse(pub_->e);
  const BigInt b = (BigInt{1} - a * four_delta_sq) / pub_->e;  // exact, <= 0
  BigInt y = mont.pow(w, a);
  if (b.is_negative()) {
    y = mont.mul(y, mont.pow(x.mod_inverse(pub_->modulus), -b));
  } else {
    y = mont.mul(y, mont.pow(x, b));
  }
  return y.to_bytes_padded(
      static_cast<std::size_t>(pub_->modulus.bit_length() + 7) / 8);
}

bool RsaThresholdScheme::verify(BytesView msg, BytesView sig) const {
  const RsaPublicKey key{pub_->modulus, pub_->e};
  return rsa_verify(key, msg, sig, pub_->hash);
}

std::unique_ptr<RsaThresholdScheme> RsaThresholdDeal::make_party(int i) const {
  if (i < 0) {
    return std::make_unique<RsaThresholdScheme>(pub, -1, BigInt{0}, 0);
  }
  return std::make_unique<RsaThresholdScheme>(
      pub, i, shares[static_cast<std::size_t>(i)],
      0x7e51 + static_cast<std::uint64_t>(i));
}

RsaThresholdDeal deal_rsa_threshold_with_key(Rng& rng, int n, int k,
                                             const RsaKeyPair& key,
                                             HashKind hash) {
  if (n < 1 || k < 1 || k > n)
    throw std::invalid_argument("deal_rsa_threshold: need 1 <= k <= n");
  if (BigInt{n} >= key.pub.e)
    throw std::invalid_argument("deal_rsa_threshold: e must exceed n");
  const BigInt pprime = (key.p - BigInt{1}) >> 1;
  const BigInt qprime = (key.q - BigInt{1}) >> 1;
  const BigInt m = pprime * qprime;
  const BigInt d = key.pub.e.mod_inverse(m);

  const SecretPolynomial poly(rng, d, m, k);
  auto pub = std::make_shared<RsaThresholdPublic>();
  pub->n = n;
  pub->k = k;
  pub->modulus = key.pub.n;
  pub->e = key.pub.e;
  pub->delta = factorial(n);
  pub->hash = hash;
  // v = u^2 for random u: a generator of the squares w.h.p.
  const bignum::Montgomery mont(key.pub.n);
  const BigInt u =
      BigInt{2} + BigInt::random_below(rng, key.pub.n - BigInt{3});
  pub->v = mont.mul(u, u);

  RsaThresholdDeal deal;
  deal.shares = poly.shares(n);
  pub->vi.reserve(static_cast<std::size_t>(n));
  for (const BigInt& si : deal.shares) {
    pub->vi.push_back(mont.pow(pub->v, si));
  }
  deal.pub = std::move(pub);
  return deal;
}

RsaThresholdDeal deal_rsa_threshold(Rng& rng, int n, int k, int modulus_bits,
                                    HashKind hash) {
  const RsaKeyPair key =
      rsa_generate(rng, modulus_bits, /*safe_primes=*/true, BigInt{65537});
  return deal_rsa_threshold_with_key(rng, n, k, key, hash);
}

}  // namespace sintra::crypto
