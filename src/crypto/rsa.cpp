#include "crypto/rsa.hpp"

#include <stdexcept>

#include "bignum/montgomery.hpp"

namespace sintra::crypto {

void RsaPublicKey::write(Writer& w) const {
  n.write(w);
  e.write(w);
}

RsaPublicKey RsaPublicKey::read(Reader& r) {
  RsaPublicKey out;
  out.n = BigInt::read(r);
  out.e = BigInt::read(r);
  return out;
}

RsaKeyPair rsa_generate(Rng& rng, int bits, bool safe_primes,
                        const BigInt& e) {
  if (bits < 32) throw std::domain_error("rsa_generate: modulus too small");
  const int half = bits / 2;
  for (;;) {
    const BigInt p = safe_primes ? bignum::random_safe_prime(rng, half)
                                 : bignum::random_prime(rng, half);
    const BigInt q = safe_primes ? bignum::random_safe_prime(rng, bits - half)
                                 : bignum::random_prime(rng, bits - half);
    if (p == q) continue;
    const BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    const BigInt phi = (p - BigInt{1}) * (q - BigInt{1});
    if (BigInt::gcd(e, phi) != BigInt{1}) continue;
    RsaKeyPair key;
    key.pub = {n, e};
    key.d = e.mod_inverse(phi);
    key.p = p;
    key.q = q;
    key.dp = key.d.mod(p - BigInt{1});
    key.dq = key.d.mod(q - BigInt{1});
    key.qinv = q.mod_inverse(p);
    return key;
  }
}

BigInt rsa_fdh(BytesView msg, const BigInt& n, HashKind hash) {
  const std::size_t nbytes = static_cast<std::size_t>(n.bit_length() + 7) / 8;
  Bytes material;
  std::uint32_t block = 0;
  while (material.size() < nbytes + 8) {
    Writer w;
    w.u32(block++);
    w.raw(msg);
    const Bytes d = hash_bytes(hash, w.data());
    material.insert(material.end(), d.begin(), d.end());
  }
  return BigInt::from_bytes(material).mod(n);
}

Bytes rsa_sign(const RsaKeyPair& key, BytesView msg, HashKind hash) {
  const BigInt x = rsa_fdh(msg, key.pub.n, hash);
  // CRT: two half-size exponentiations.
  const bignum::Montgomery mp(key.p);
  const bignum::Montgomery mq(key.q);
  const BigInt m1 = mp.pow(x.mod(key.p), key.dp);
  const BigInt m2 = mq.pow(x.mod(key.q), key.dq);
  const BigInt h = (key.qinv * (m1 - m2)).mod(key.p);
  const BigInt s = m2 + key.q * h;
  return s.to_bytes_padded(key.pub.modulus_bytes());
}

bool rsa_verify(const RsaPublicKey& key, BytesView msg, BytesView sig,
                HashKind hash) {
  if (sig.size() != key.modulus_bytes()) return false;
  const BigInt s = BigInt::from_bytes(sig);
  if (s >= key.n) return false;
  return s.mod_pow(key.e, key.n) == rsa_fdh(msg, key.n, hash);
}

}  // namespace sintra::crypto
