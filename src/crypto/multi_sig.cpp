#include "crypto/multi_sig.hpp"

#include <set>
#include <stdexcept>

#include "crypto/cost.hpp"
#include "util/serde.hpp"

namespace sintra::crypto {

MultiSigScheme::MultiSigScheme(std::shared_ptr<const MultiSigPublic> pub,
                               int index,
                               std::shared_ptr<const RsaKeyPair> own_key)
    : pub_(std::move(pub)), index_(index), own_key_(std::move(own_key)) {}

Bytes MultiSigScheme::sign_share(BytesView msg) {
  if (own_key_ == nullptr)
    throw std::logic_error("MultiSigScheme: verify-only handle");
  const OpScope ops("multi_sig.sign_share");
  return rsa_sign(*own_key_, msg, pub_->hash);
}

bool MultiSigScheme::verify_share(BytesView msg, int signer,
                                  BytesView share) const {
  if (signer < 0 || signer >= pub_->n) return false;
  const OpScope ops("multi_sig.verify_share");
  return rsa_verify(pub_->keys[static_cast<std::size_t>(signer)], msg, share,
                    pub_->hash);
}

Bytes MultiSigScheme::combine(
    BytesView msg, const std::vector<std::pair<int, Bytes>>& shares) const {
  (void)msg;  // shares are self-contained signatures
  if (static_cast<int>(shares.size()) < pub_->k)
    throw std::invalid_argument("MultiSigScheme::combine: need k shares");
  Writer w;
  w.u32(static_cast<std::uint32_t>(pub_->k));
  std::set<int> seen;
  int written = 0;
  for (const auto& [idx, sig] : shares) {
    if (written == pub_->k) break;
    if (idx < 0 || idx >= pub_->n || !seen.insert(idx).second)
      throw std::invalid_argument(
          "MultiSigScheme::combine: bad or duplicate signer index");
    w.u32(static_cast<std::uint32_t>(idx));
    w.bytes(sig);
    ++written;
  }
  return std::move(w).take();
}

bool MultiSigScheme::verify(BytesView msg, BytesView sig) const {
  try {
    Reader r(sig);
    const std::uint32_t count = r.u32();
    if (count != static_cast<std::uint32_t>(pub_->k)) return false;
    std::set<int> seen;
    for (std::uint32_t i = 0; i < count; ++i) {
      const int idx = static_cast<int>(r.u32());
      const Bytes s = r.bytes();
      if (idx < 0 || idx >= pub_->n || !seen.insert(idx).second) return false;
      if (!rsa_verify(pub_->keys[static_cast<std::size_t>(idx)], msg, s,
                      pub_->hash)) {
        return false;
      }
    }
    r.expect_end();
    return true;
  } catch (const SerdeError&) {
    return false;
  }
}

}  // namespace sintra::crypto
