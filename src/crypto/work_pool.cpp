#include "crypto/work_pool.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

namespace sintra::crypto {

WorkPool::WorkPool(std::size_t threads)
    : m_jobs_(&obs::registry().counter("crypto.pool.jobs")),
      m_depth_(&obs::registry().gauge("crypto.pool.depth")),
      m_wait_ms_(&obs::registry().histogram("crypto.pool.wait_ms")) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this](const std::stop_token& st) { worker(st); });
  }
}

WorkPool::~WorkPool() {
  for (std::jthread& w : workers_) w.request_stop();
  cv_.notify_all();
  // jthread joins on destruction; workers drain the queue first (the wait
  // predicate keeps returning true while jobs remain).
}

double WorkPool::now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void WorkPool::submit(std::function<void()> work,
                      std::function<void()> complete) {
  m_jobs_->inc();
  if (workers_.empty()) {
    work();
    complete();
    return;
  }
  {
    const std::lock_guard lk(mu_);
    queue_.push_back({std::move(work), std::move(complete), now_ms()});
    m_depth_->set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

void WorkPool::worker(const std::stop_token& st) {
  for (;;) {
    Job job;
    {
      std::unique_lock lk(mu_);
      if (!cv_.wait(lk, st, [this] { return !queue_.empty(); })) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      m_depth_->set(static_cast<double>(queue_.size()));
    }
    m_wait_ms_->observe(now_ms() - job.enqueue_ms);
    job.work();
    // Helper jobs from run_parallel() have no completion to deliver.
    if (job.complete) finish(std::move(job.complete));
  }
}

void WorkPool::run_parallel(std::vector<std::function<void()>>& jobs) {
  if (jobs.empty()) return;
  if (workers_.empty() || jobs.size() == 1) {
    for (const std::function<void()>& job : jobs) job();
    return;
  }
  struct Batch {
    std::vector<std::function<void()>>* jobs;  // valid while done < total
    std::size_t total;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto batch = std::make_shared<Batch>();
  batch->jobs = &jobs;
  batch->total = jobs.size();
  // Claims jobs off the shared cursor until none remain.  Leftover helper
  // entries that wake after the batch is finished see next >= total and
  // never touch the (by then possibly destroyed) jobs vector.
  auto claim = [batch] {
    for (;;) {
      const std::size_t i = batch->next.fetch_add(1);
      if (i >= batch->total) return;
      (*batch->jobs)[i]();
      if (batch->done.fetch_add(1) + 1 == batch->total) {
        const std::lock_guard lk(batch->mu);
        batch->cv.notify_all();
      }
    }
  };
  const std::size_t helpers = std::min(workers_.size(), batch->total - 1);
  {
    const std::lock_guard lk(mu_);
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.push_back({claim, nullptr, now_ms()});
    }
    m_depth_->set(static_cast<double>(queue_.size()));
  }
  cv_.notify_all();
  claim();  // caller participation guarantees progress
  std::unique_lock lk(batch->mu);
  batch->cv.wait(lk,
                 [&batch] { return batch->done.load() >= batch->total; });
}

void WorkPool::finish(std::function<void()> complete) {
  std::function<void()> notify;
  {
    const std::lock_guard lk(done_mu_);
    done_.push_back(std::move(complete));
    notify = notify_;
  }
  if (notify) notify();
}

std::size_t WorkPool::drain_completions() {
  std::vector<std::function<void()>> batch;
  {
    const std::lock_guard lk(done_mu_);
    batch.swap(done_);
  }
  for (const std::function<void()>& fn : batch) fn();
  return batch.size();
}

void WorkPool::set_completion_notify(std::function<void()> notify) {
  const std::lock_guard lk(done_mu_);
  notify_ = std::move(notify);
}

}  // namespace sintra::crypto
