// TDH2 threshold public-key encryption (Shoup–Gennaro, EUROCRYPT '98).
//
// Secure causal atomic broadcast (paper §2.6) encrypts every payload under
// the channel's global public key; replicas exchange decryption shares
// only after the ciphertext's position in the delivery sequence is fixed.
// TDH2 is chosen-ciphertext secure — the ciphertext-validity check (a
// Schnorr-style proof embedded in the ciphertext) stops a Byzantine party
// from mauling a ciphertext into a related one, which is exactly the
// property that preserves causal order.
//
// Hybrid encryption: the DH value h^r keys an AES-128-CTR bulk encryption
// of the payload (the paper used MARS; see DESIGN.md for the
// substitution).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "crypto/blacklist.hpp"
#include "crypto/group.hpp"
#include "crypto/shamir.hpp"
#include "util/bytes.hpp"

namespace sintra::crypto {

class WorkPool;

struct Tdh2Public {
  int n = 0;
  int k = 0;
  DlogGroup group;
  BigInt h;                          // g^x, the encryption key
  BigInt g_bar;                      // independent second generator
  std::vector<BigInt> verification;  // g^{x_i} per party

  /// Encrypts `plaintext` with label `label` (the label binds context —
  /// SINTRA uses the channel pid).  Anyone holding the public key may
  /// encrypt, including non-members (paper §3.4).
  [[nodiscard]] Bytes encrypt(BytesView plaintext, BytesView label,
                              Rng& rng) const;

  /// Public ciphertext validity check (anyone can run it).
  [[nodiscard]] bool ciphertext_valid(BytesView ciphertext) const;
};

/// Extracts the (authenticated) label of a ciphertext without verifying
/// it; nullopt on malformed input.  Applications must compare it with the
/// expected context — the label is what stops a ciphertext produced for
/// one channel from being replayed onto another (Shoup–Gennaro's labeled
/// CCA security).
std::optional<Bytes> tdh2_ciphertext_label(BytesView ciphertext);

class Tdh2Party {
 public:
  Tdh2Party(std::shared_ptr<const Tdh2Public> pub, int index, BigInt share,
            std::uint64_t prover_seed);

  [[nodiscard]] int n() const { return pub_->n; }
  [[nodiscard]] int k() const { return pub_->k; }
  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] const Tdh2Public& pub() const { return *pub_; }

  /// Produces this party's decryption share, or nullopt if the ciphertext
  /// is invalid (an honest party never helps decrypt a mauled ciphertext).
  [[nodiscard]] std::optional<Bytes> decrypt_share(BytesView ciphertext);

  /// Verifies a share from `signer` against the ciphertext.
  [[nodiscard]] bool verify_share(BytesView ciphertext, int signer,
                                  BytesView share) const;

  /// Combines k shares into the plaintext.  Throws std::invalid_argument
  /// on bad share sets or an invalid ciphertext.  Shares are interpolated
  /// as given: callers either verify them eagerly (verify_share) or use
  /// combine_checked(), which verifies the chosen set in one batch.
  [[nodiscard]] Bytes combine(
      BytesView ciphertext,
      const std::vector<std::pair<int, Bytes>>& shares) const;

  /// Batch-first fast path: picks the first k plausible shares (skipping
  /// duplicates and locally blacklisted signers), verifies their DLEQ
  /// proofs with ONE random-linear-combination check — paying the
  /// ciphertext-validity check once instead of once per share — then
  /// interpolates the plaintext.  On batch failure the fallback isolates
  /// the bad shares by bisection, blacklists their signers on this
  /// handle, and retries with replacements.  Returns nullopt on an
  /// invalid ciphertext or while fewer than k shares from distinct
  /// non-blacklisted signers are available.  Membership checks stay
  /// *individual* (BatchMembership::kIndividual): a decryption accepting
  /// a poisoned share would deliver a wrong plaintext — a safety
  /// violation, unlike a disagreeing coin.  Thread-safe.
  /// When a threaded `pool` is given, the fallback verifies each chosen
  /// share individually via WorkPool::run_parallel (across cores)
  /// instead of serial bisection; the accepted/blacklisted sets are
  /// identical either way.
  [[nodiscard]] std::optional<Bytes> combine_checked(
      BytesView ciphertext, const std::vector<std::pair<int, Bytes>>& shares,
      WorkPool* pool = nullptr) const;

  /// True if `signer` was caught (by a combine_checked fallback on this
  /// handle) submitting a bad decryption share.
  [[nodiscard]] bool is_blacklisted(int signer) const {
    return blacklist_.contains(signer);
  }

 private:
  std::shared_ptr<const Tdh2Public> pub_;
  int index_;
  BigInt share_;
  Rng prover_rng_;
  // Combiners see the same few signer sets across ciphertexts.
  mutable LagrangeCache lagrange_;
  // Batch-verification randomness: deterministic per handle, mutex-guarded
  // so checked combines may run on a crypto worker pool.
  mutable std::mutex verify_mu_;
  mutable Rng verify_rng_;
  mutable SignerBlacklist blacklist_;
};

struct Tdh2Deal {
  std::shared_ptr<const Tdh2Public> pub;
  std::vector<BigInt> shares;

  [[nodiscard]] std::unique_ptr<Tdh2Party> make_party(int i) const;
};

Tdh2Deal deal_tdh2(Rng& rng, int n, int k, const DlogGroup& group);

}  // namespace sintra::crypto
