// Multi-signatures: the vector-of-ordinary-signatures implementation of
// the ThresholdSigScheme interface (paper §2.1).
//
// A "share" is party i's standard RSA-FDH signature; the assembled
// "threshold signature" is a list of k (signer, signature) pairs.  No
// change is needed in the protocols that use threshold signatures — this
// is exactly the drop-in property the paper exploits, and the
// configuration the experiments ran ("threshold signatures are
// implemented as multi-signatures if nothing else is mentioned", §4).
#pragma once

#include <memory>
#include <vector>

#include "crypto/threshold_sig.hpp"

namespace sintra::crypto {

/// Public data: every party's standard signature verification key.
struct MultiSigPublic {
  int n = 0;
  int k = 0;
  std::vector<RsaPublicKey> keys;
  HashKind hash = HashKind::kSha256;
};

class MultiSigScheme final : public ThresholdSigScheme {
 public:
  /// `own_key` is this party's standard RSA key pair (empty optional for a
  /// verify-only handle).
  MultiSigScheme(std::shared_ptr<const MultiSigPublic> pub, int index,
                 std::shared_ptr<const RsaKeyPair> own_key);

  [[nodiscard]] int n() const override { return pub_->n; }
  [[nodiscard]] int k() const override { return pub_->k; }
  [[nodiscard]] int index() const override { return index_; }

  [[nodiscard]] Bytes sign_share(BytesView msg) override;
  [[nodiscard]] bool verify_share(BytesView msg, int signer,
                                  BytesView share) const override;
  [[nodiscard]] Bytes combine(
      BytesView msg,
      const std::vector<std::pair<int, Bytes>>& shares) const override;
  [[nodiscard]] bool verify(BytesView msg, BytesView sig) const override;

 private:
  std::shared_ptr<const MultiSigPublic> pub_;
  int index_;
  std::shared_ptr<const RsaKeyPair> own_key_;
};

}  // namespace sintra::crypto
