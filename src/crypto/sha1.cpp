#include "crypto/sha1.hpp"

#include <stdexcept>

namespace sintra::crypto {

namespace {
std::uint32_t rotl(std::uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }
}  // namespace

Sha1::Sha1() : h_{0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u} {}

Sha1& Sha1::update(BytesView data) {
  if (finalized_) throw std::logic_error("Sha1: update after digest");
  total_len_ += data.size();
  for (std::uint8_t b : data) {
    buffer_[buffer_len_++] = b;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  return *this;
}

Bytes Sha1::digest() {
  if (finalized_) throw std::logic_error("Sha1: digest called twice");
  finalized_ = true;
  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  std::uint8_t pad = 0x80;
  buffer_[buffer_len_++] = pad;
  if (buffer_len_ > kBlockSize - 8) {
    while (buffer_len_ < kBlockSize) buffer_[buffer_len_++] = 0;
    process_block(buffer_.data());
    buffer_len_ = 0;
  }
  while (buffer_len_ < kBlockSize - 8) buffer_[buffer_len_++] = 0;
  for (int i = 7; i >= 0; --i) {
    buffer_[buffer_len_++] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  process_block(buffer_.data());

  Bytes out(kDigestSize);
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Bytes Sha1::hash(BytesView data) { return Sha1().update(data).digest(); }

}  // namespace sintra::crypto
