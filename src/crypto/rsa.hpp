// Standard RSA signatures (full-domain-hash style), used for:
//  - each party's per-message signature in the atomic broadcast protocol
//    (paper §2.5: "every party first signs the next message to send
//    together with the current round number");
//  - the multi-signature implementation of threshold signatures
//    (paper §2.1);
//  - and as the base arithmetic of Shoup's threshold RSA scheme.
//
// Signing uses CRT (two half-size exponentiations), which is what makes
// multi-signatures cheap in Figure 6 of the paper.
#pragma once

#include "bignum/bigint.hpp"
#include "bignum/prime.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace sintra::crypto {

using bignum::BigInt;

struct RsaPublicKey {
  BigInt n;
  BigInt e;

  [[nodiscard]] std::size_t modulus_bytes() const {
    return static_cast<std::size_t>(n.bit_length() + 7) / 8;
  }

  void write(Writer& w) const;
  static RsaPublicKey read(Reader& r);

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  BigInt d;
  // CRT components.
  BigInt p, q, dp, dq, qinv;
};

/// Generates an RSA key with modulus of exactly `bits` bits.
/// If `safe_primes`, p and q are safe primes (needed by Shoup threshold
/// signatures; slower to generate).
RsaKeyPair rsa_generate(Rng& rng, int bits, bool safe_primes = false,
                        const BigInt& e = BigInt{65537});

/// Deterministic full-domain-style encoding of a message into Z_n:
/// expands H(msg) with a counter and reduces mod n.
BigInt rsa_fdh(BytesView msg, const BigInt& n, HashKind hash);

/// FDH signature: rsa_fdh(msg)^d mod n via CRT; returned big-endian,
/// padded to the modulus size.
Bytes rsa_sign(const RsaKeyPair& key, BytesView msg,
               HashKind hash = HashKind::kSha256);

/// Verifies sig^e == rsa_fdh(msg) mod n.  False on malformed input.
bool rsa_verify(const RsaPublicKey& key, BytesView msg, BytesView sig,
                HashKind hash = HashKind::kSha256);

}  // namespace sintra::crypto
